package aodv

import (
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
	"cavenet/internal/traffic"
)

func chainWorld(t *testing.T, n int, spacing float64, cfg Config) *netsim.World {
	t.Helper()
	positions := make([]geometry.Vec2, n)
	for i := range positions {
		positions[i] = geometry.Vec2{X: float64(i) * spacing}
	}
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  n,
		Seed:   1,
		Static: positions,
	}, func(node *netsim.Node) netsim.Router { return New(node, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func sendAt(w *netsim.World, at sim.Time, src, dst, size int) {
	w.Kernel.Schedule(at, func() {
		n := w.Node(src)
		n.SendData(n.NewPacket(netsim.NodeID(dst), netsim.PortCBR, size))
	})
}

func TestRouteDiscoveryOverChain(t *testing.T) {
	w := chainWorld(t, 4, 200, Config{})
	sink := &traffic.Sink{}
	w.Node(3).AttachPort(netsim.PortCBR, sink)
	sendAt(w, sim.Second, 0, 3, 512)
	w.Run(5 * sim.Second)
	if sink.Received != 1 {
		t.Fatalf("delivered %d, want 1", sink.Received)
	}
	r := w.Node(0).Router().(*Router)
	next, hops, ok := r.Table(3)
	if !ok {
		t.Fatal("source has no route after successful delivery")
	}
	if next != 1 || hops != 3 {
		t.Fatalf("route = next %d hops %d, want next 1 hops 3", next, hops)
	}
	// The destination must have learned the reverse route.
	rd := w.Node(3).Router().(*Router)
	if _, hops, ok := rd.Table(0); !ok || hops != 3 {
		t.Fatalf("reverse route hops=%d ok=%v", hops, ok)
	}
}

func TestDirectNeighborNoFlood(t *testing.T) {
	w := chainWorld(t, 2, 100, Config{})
	sink := &traffic.Sink{}
	w.Node(1).AttachPort(netsim.PortCBR, sink)
	sendAt(w, 500*sim.Millisecond, 0, 1, 512)
	w.Run(3 * sim.Second)
	if sink.Received != 1 {
		t.Fatalf("delivered %d", sink.Received)
	}
}

func TestBufferedPacketsFlushAfterDiscovery(t *testing.T) {
	w := chainWorld(t, 4, 200, Config{})
	sink := &traffic.Sink{}
	w.Node(3).AttachPort(netsim.PortCBR, sink)
	// Burst of 10 packets before any route exists: all must be buffered
	// through discovery and delivered afterwards — the AODV behaviour
	// behind the paper's Fig. 8 goodput spikes.
	for i := 0; i < 10; i++ {
		sendAt(w, sim.Second, 0, 3, 512)
	}
	w.Run(10 * sim.Second)
	if sink.Received != 10 {
		t.Fatalf("delivered %d/10 buffered packets", sink.Received)
	}
}

func TestNoRouteDropsAfterRetries(t *testing.T) {
	// Destination 5 km away: unreachable.
	w := chainWorld(t, 2, 5000, Config{})
	var drops int
	w.SetHooks(netsim.Hooks{DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
		if reason == "aodv:no-route" {
			drops++
		}
	}})
	sendAt(w, sim.Second, 0, 1, 512)
	w.Run(30 * sim.Second)
	if drops != 1 {
		t.Fatalf("drops = %d, want 1 after RREQ retries exhaust", drops)
	}
}

func TestLinkBreakTriggersRediscovery(t *testing.T) {
	// 3-node chain where the middle node moves away mid-run, breaking
	// 0→1→2; node 0 must rediscover when node 1 returns.
	positions := [][]geometry.Vec2{
		// node 0 static
		repeatVec(geometry.Vec2{X: 0}, 41),
		// node 1: at 200 m until t=10, then gone (y=10000) until t=25, back after
		nil,
		// node 2 static at 400 m
		repeatVec(geometry.Vec2{X: 400}, 41),
	}
	mid := make([]geometry.Vec2, 41)
	for i := range mid {
		switch {
		case i < 10:
			mid[i] = geometry.Vec2{X: 200}
		case i < 25:
			mid[i] = geometry.Vec2{X: 200, Y: 10000}
		default:
			mid[i] = geometry.Vec2{X: 200}
		}
	}
	positions[1] = mid
	tr := &mobility.SampledTrace{Interval: 1, Positions: positions}
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: 3, Seed: 2, Mobility: tr,
	}, func(node *netsim.Node) netsim.Router { return New(node, Config{}) })
	if err != nil {
		t.Fatal(err)
	}
	sink := &traffic.Sink{}
	w.Node(2).AttachPort(netsim.PortCBR, sink)
	cbr := traffic.NewCBR(w.Node(0), traffic.CBRConfig{
		Dst: 2, Rate: 2, Start: 2 * sim.Second, Stop: 38 * sim.Second,
	})
	cbr.Start()
	w.Run(40 * sim.Second)
	// Deliveries must happen both before the break and after the repair.
	if sink.Received < 20 {
		t.Fatalf("delivered %d packets; want most of both phases", sink.Received)
	}
	if sink.LastAt < 30*sim.Second {
		t.Fatalf("no deliveries after repair (last at %v)", sink.LastAt)
	}
}

func repeatVec(v geometry.Vec2, n int) []geometry.Vec2 {
	out := make([]geometry.Vec2, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestExpandingRingVsFlood(t *testing.T) {
	// On a long chain, expanding-ring search should transmit no MORE RREQ
	// control packets than full flooding for a nearby destination.
	run := func(expanding bool) uint64 {
		cfg := Config{ExpandingRing: &expanding}
		w := chainWorld(t, 8, 200, cfg)
		sink := &traffic.Sink{}
		w.Node(1).AttachPort(netsim.PortCBR, sink)
		sendAt(w, sim.Second, 0, 1, 512)
		w.Run(5 * sim.Second)
		if sink.Received != 1 {
			t.Fatalf("expanding=%v: delivery failed", expanding)
		}
		var pkts uint64
		for _, n := range w.Nodes() {
			p, _ := n.Router().ControlTraffic()
			pkts += p
		}
		return pkts
	}
	ring := run(true)
	flood := run(false)
	if ring > flood {
		t.Fatalf("expanding ring used %d control packets, flood used %d", ring, flood)
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	r := w.Node(0).Router().(*Router)
	before := r.seq
	sendAt(w, sim.Second, 0, 2, 512)
	w.Run(5 * sim.Second)
	if r.seq <= before {
		t.Fatal("originator sequence number must increase with discoveries")
	}
}

func TestControlTrafficCounted(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	w.Run(5 * sim.Second)
	pkts, bytes := w.Node(0).Router().ControlTraffic()
	if pkts == 0 || bytes == 0 {
		t.Fatal("hello emission should count as control traffic")
	}
}

func TestBufferCapDropsExcess(t *testing.T) {
	w := chainWorld(t, 2, 5000, Config{BufferCap: 4})
	var drops int
	w.SetHooks(netsim.Hooks{DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
		if reason == "aodv:buffer-full" {
			drops++
		}
	}})
	for i := 0; i < 10; i++ {
		sendAt(w, sim.Second, 0, 1, 512)
	}
	w.Run(3 * sim.Second)
	if drops != 6 {
		t.Fatalf("buffer-full drops = %d, want 6", drops)
	}
}

func TestRouterName(t *testing.T) {
	w := chainWorld(t, 2, 100, Config{})
	if w.Node(0).Router().Name() != "aodv" {
		t.Fatal("Name() should be aodv")
	}
}

// Unit tests for the routing-table rules, run against both the dense fast
// path and the map oracle.

func eachTable(t *testing.T, f func(t *testing.T, k *sim.Kernel, tbl routeTable)) {
	t.Helper()
	t.Run("dense", func(t *testing.T) {
		k := sim.NewKernel()
		f(t, k, newDenseTable(k))
	})
	t.Run("oracle", func(t *testing.T) {
		k := sim.NewKernel()
		f(t, k, newMapTable(k))
	})
}

func TestTableSequenceRules(t *testing.T) {
	eachTable(t, func(t *testing.T, k *sim.Kernel, tbl routeTable) {
		tbl.update(5, 10, true, 3, 1, sim.Second)
		// Older sequence number must not overwrite.
		tbl.update(5, 9, true, 1, 2, sim.Second)
		if next, hops, ok := tbl.validNext(5); !ok || next != 1 || hops != 3 {
			t.Fatalf("stale update accepted: next=%d hops=%d ok=%v", next, hops, ok)
		}
		// Same seq, shorter path wins.
		tbl.update(5, 10, true, 2, 3, sim.Second)
		if next, hops, ok := tbl.validNext(5); !ok || next != 3 || hops != 2 {
			t.Fatalf("shorter path rejected: next=%d hops=%d ok=%v", next, hops, ok)
		}
		// Newer seq always wins, even when longer.
		tbl.update(5, 11, true, 7, 4, sim.Second)
		if next, hops, ok := tbl.validNext(5); !ok || next != 4 || hops != 7 {
			t.Fatalf("newer seq rejected: next=%d hops=%d ok=%v", next, hops, ok)
		}
	})
}

func TestTableExpiry(t *testing.T) {
	eachTable(t, func(t *testing.T, k *sim.Kernel, tbl routeTable) {
		tbl.update(5, 1, true, 1, 1, sim.Second)
		if _, _, ok := tbl.validNext(5); !ok {
			t.Fatal("fresh route should be valid")
		}
		k.Schedule(2*sim.Second, func() {})
		k.Run()
		if _, _, ok := tbl.validNext(5); ok {
			t.Fatal("expired route should be invalid")
		}
	})
}

func TestTableBreakViaBumpsSeq(t *testing.T) {
	eachTable(t, func(t *testing.T, k *sim.Kernel, tbl routeTable) {
		tbl.update(5, 7, true, 1, 1, sim.Second)
		got := tbl.breakVia(1, nil)
		if len(got) != 1 || got[0].Dst != 5 || got[0].Seq != 8 {
			t.Fatalf("breakVia should bump seq: %+v", got)
		}
		if got := tbl.breakVia(1, nil); len(got) != 0 {
			t.Fatalf("double breakVia should find nothing: %+v", got)
		}
	})
}

func TestTableBreakVia(t *testing.T) {
	eachTable(t, func(t *testing.T, k *sim.Kernel, tbl routeTable) {
		tbl.update(5, 1, true, 2, 9, sim.Second)
		tbl.update(6, 1, true, 3, 9, sim.Second)
		tbl.update(7, 1, true, 1, 8, sim.Second)
		if via := tbl.breakVia(9, nil); len(via) != 2 {
			t.Fatalf("breakVia = %d entries, want 2", len(via))
		}
		if _, _, ok := tbl.validNext(7); !ok {
			t.Fatal("route via another neighbor must survive")
		}
	})
}

func TestSeqWraparound(t *testing.T) {
	eachTable(t, func(t *testing.T, k *sim.Kernel, tbl routeTable) {
		// Near-wraparound: 2^32-1 then 1 — signed comparison must treat 1
		// as newer.
		tbl.update(5, ^uint32(0), true, 2, 1, sim.Second)
		tbl.update(5, 1, true, 5, 2, sim.Second)
		if next, _, ok := tbl.validNext(5); !ok || next != 2 {
			t.Fatalf("wraparound comparison failed: next=%d ok=%v", next, ok)
		}
	})
}

// TestTableLazyPurgeMatchesEager drives both implementations through the
// same update/refresh/purge schedule and checks the observable state stays
// identical — the dense path's lazy ExpiryHeap must flip exactly the
// entries the oracle's eager scan flips, at the same tick.
func TestTableLazyPurgeMatchesEager(t *testing.T) {
	k := sim.NewKernel()
	dense := newDenseTable(k)
	oracle := newMapTable(k)
	both := [...]routeTable{dense, oracle}

	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 400; step++ {
		k.Schedule(k.Now()+sim.Time(rng.Int63n(int64(200*sim.Millisecond))), func() {})
		k.Run()
		dst := netsim.NodeID(rng.Intn(12))
		switch rng.Intn(5) {
		case 0:
			seq, hops := uint32(rng.Intn(8)), 1+rng.Intn(4)
			next := netsim.NodeID(rng.Intn(4))
			life := sim.Time(1+rng.Intn(3)) * sim.Second
			for _, tb := range both {
				tb.update(dst, seq, true, hops, next, life)
			}
		case 1:
			for _, tb := range both {
				tb.refresh(dst, sim.Second)
			}
		case 2:
			for _, tb := range both {
				tb.purgeExpired()
			}
		case 3:
			n := netsim.NodeID(rng.Intn(4))
			got := dense.breakVia(n, nil)
			want := oracle.breakVia(n, nil)
			if len(got) != len(want) {
				t.Fatalf("step %d: breakVia count %d != %d", step, len(got), len(want))
			}
		case 4:
			seq := uint32(rng.Intn(10))
			from := netsim.NodeID(rng.Intn(4))
			gs, gp, gm := dense.rerrApply(dst, from, seq)
			ws, wp, wm := oracle.rerrApply(dst, from, seq)
			if gs != ws || gp != wp || gm != wm {
				t.Fatalf("step %d: rerrApply (%d,%v,%v) != (%d,%v,%v)", step, gs, gp, gm, ws, wp, wm)
			}
		}
		for dst := netsim.NodeID(0); dst < 12; dst++ {
			gn, gh, gok := dense.validNext(dst)
			wn, wh, wok := oracle.validNext(dst)
			if gn != wn || gh != wh || gok != wok {
				t.Fatalf("step %d dst %d: dense (%d,%d,%v) != oracle (%d,%d,%v)",
					step, dst, gn, gh, gok, wn, wh, wok)
			}
			gs, gk, gok2 := dense.lastSeq(dst)
			ws, wk, wok2 := oracle.lastSeq(dst)
			if gs != ws || gk != wk || gok2 != wok2 {
				t.Fatalf("step %d dst %d: lastSeq (%d,%v,%v) != (%d,%v,%v)",
					step, dst, gs, gk, gok2, ws, wk, wok2)
			}
		}
	}
}

// TestSeenEntriesExpire guards the fix for the unbounded RREQ dedup table:
// the seed implementation never retired seen entries; they must now expire
// after PATH_DISCOVERY_TIME via the lazy heap.
func TestSeenEntriesExpire(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	sendAt(w, sim.Second, 0, 2, 128)
	w.Run(3 * sim.Second)
	r1 := w.Node(1).Router().(*Router)
	if r1.SeenEntries() == 0 {
		t.Fatal("precondition: relay recorded no RREQ dedup entries")
	}
	w.Kernel.RunUntil(w.Kernel.Now() + 3*r1.cfg.netTraversalTime())
	r1.purge()
	if got := r1.SeenEntries(); got != 0 {
		t.Fatalf("seen entries after PATH_DISCOVERY_TIME = %d, want 0", got)
	}
}
