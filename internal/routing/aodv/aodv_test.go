package aodv

import (
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/mobility"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
	"cavenet/internal/traffic"
)

func chainWorld(t *testing.T, n int, spacing float64, cfg Config) *netsim.World {
	t.Helper()
	positions := make([]geometry.Vec2, n)
	for i := range positions {
		positions[i] = geometry.Vec2{X: float64(i) * spacing}
	}
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  n,
		Seed:   1,
		Static: positions,
	}, func(node *netsim.Node) netsim.Router { return New(node, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func sendAt(w *netsim.World, at sim.Time, src, dst, size int) {
	w.Kernel.Schedule(at, func() {
		n := w.Node(src)
		n.SendData(n.NewPacket(netsim.NodeID(dst), netsim.PortCBR, size))
	})
}

func TestRouteDiscoveryOverChain(t *testing.T) {
	w := chainWorld(t, 4, 200, Config{})
	sink := &traffic.Sink{}
	w.Node(3).AttachPort(netsim.PortCBR, sink)
	sendAt(w, sim.Second, 0, 3, 512)
	w.Run(5 * sim.Second)
	if sink.Received != 1 {
		t.Fatalf("delivered %d, want 1", sink.Received)
	}
	r := w.Node(0).Router().(*Router)
	next, hops, ok := r.Table(3)
	if !ok {
		t.Fatal("source has no route after successful delivery")
	}
	if next != 1 || hops != 3 {
		t.Fatalf("route = next %d hops %d, want next 1 hops 3", next, hops)
	}
	// The destination must have learned the reverse route.
	rd := w.Node(3).Router().(*Router)
	if _, hops, ok := rd.Table(0); !ok || hops != 3 {
		t.Fatalf("reverse route hops=%d ok=%v", hops, ok)
	}
}

func TestDirectNeighborNoFlood(t *testing.T) {
	w := chainWorld(t, 2, 100, Config{})
	sink := &traffic.Sink{}
	w.Node(1).AttachPort(netsim.PortCBR, sink)
	sendAt(w, 500*sim.Millisecond, 0, 1, 512)
	w.Run(3 * sim.Second)
	if sink.Received != 1 {
		t.Fatalf("delivered %d", sink.Received)
	}
}

func TestBufferedPacketsFlushAfterDiscovery(t *testing.T) {
	w := chainWorld(t, 4, 200, Config{})
	sink := &traffic.Sink{}
	w.Node(3).AttachPort(netsim.PortCBR, sink)
	// Burst of 10 packets before any route exists: all must be buffered
	// through discovery and delivered afterwards — the AODV behaviour
	// behind the paper's Fig. 8 goodput spikes.
	for i := 0; i < 10; i++ {
		sendAt(w, sim.Second, 0, 3, 512)
	}
	w.Run(10 * sim.Second)
	if sink.Received != 10 {
		t.Fatalf("delivered %d/10 buffered packets", sink.Received)
	}
}

func TestNoRouteDropsAfterRetries(t *testing.T) {
	// Destination 5 km away: unreachable.
	w := chainWorld(t, 2, 5000, Config{})
	var drops int
	w.SetHooks(netsim.Hooks{DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
		if reason == "aodv:no-route" {
			drops++
		}
	}})
	sendAt(w, sim.Second, 0, 1, 512)
	w.Run(30 * sim.Second)
	if drops != 1 {
		t.Fatalf("drops = %d, want 1 after RREQ retries exhaust", drops)
	}
}

func TestLinkBreakTriggersRediscovery(t *testing.T) {
	// 3-node chain where the middle node moves away mid-run, breaking
	// 0→1→2; node 0 must rediscover when node 1 returns.
	positions := [][]geometry.Vec2{
		// node 0 static
		repeatVec(geometry.Vec2{X: 0}, 41),
		// node 1: at 200 m until t=10, then gone (y=10000) until t=25, back after
		nil,
		// node 2 static at 400 m
		repeatVec(geometry.Vec2{X: 400}, 41),
	}
	mid := make([]geometry.Vec2, 41)
	for i := range mid {
		switch {
		case i < 10:
			mid[i] = geometry.Vec2{X: 200}
		case i < 25:
			mid[i] = geometry.Vec2{X: 200, Y: 10000}
		default:
			mid[i] = geometry.Vec2{X: 200}
		}
	}
	positions[1] = mid
	tr := &mobility.SampledTrace{Interval: 1, Positions: positions}
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: 3, Seed: 2, Mobility: tr,
	}, func(node *netsim.Node) netsim.Router { return New(node, Config{}) })
	if err != nil {
		t.Fatal(err)
	}
	sink := &traffic.Sink{}
	w.Node(2).AttachPort(netsim.PortCBR, sink)
	cbr := traffic.NewCBR(w.Node(0), traffic.CBRConfig{
		Dst: 2, Rate: 2, Start: 2 * sim.Second, Stop: 38 * sim.Second,
	})
	cbr.Start()
	w.Run(40 * sim.Second)
	// Deliveries must happen both before the break and after the repair.
	if sink.Received < 20 {
		t.Fatalf("delivered %d packets; want most of both phases", sink.Received)
	}
	if sink.LastAt < 30*sim.Second {
		t.Fatalf("no deliveries after repair (last at %v)", sink.LastAt)
	}
}

func repeatVec(v geometry.Vec2, n int) []geometry.Vec2 {
	out := make([]geometry.Vec2, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestExpandingRingVsFlood(t *testing.T) {
	// On a long chain, expanding-ring search should transmit no MORE RREQ
	// control packets than full flooding for a nearby destination.
	run := func(expanding bool) uint64 {
		cfg := Config{ExpandingRing: &expanding}
		w := chainWorld(t, 8, 200, cfg)
		sink := &traffic.Sink{}
		w.Node(1).AttachPort(netsim.PortCBR, sink)
		sendAt(w, sim.Second, 0, 1, 512)
		w.Run(5 * sim.Second)
		if sink.Received != 1 {
			t.Fatalf("expanding=%v: delivery failed", expanding)
		}
		var pkts uint64
		for _, n := range w.Nodes() {
			p, _ := n.Router().ControlTraffic()
			pkts += p
		}
		return pkts
	}
	ring := run(true)
	flood := run(false)
	if ring > flood {
		t.Fatalf("expanding ring used %d control packets, flood used %d", ring, flood)
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	r := w.Node(0).Router().(*Router)
	before := r.seq
	sendAt(w, sim.Second, 0, 2, 512)
	w.Run(5 * sim.Second)
	if r.seq <= before {
		t.Fatal("originator sequence number must increase with discoveries")
	}
}

func TestControlTrafficCounted(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	w.Run(5 * sim.Second)
	pkts, bytes := w.Node(0).Router().ControlTraffic()
	if pkts == 0 || bytes == 0 {
		t.Fatal("hello emission should count as control traffic")
	}
}

func TestBufferCapDropsExcess(t *testing.T) {
	w := chainWorld(t, 2, 5000, Config{BufferCap: 4})
	var drops int
	w.SetHooks(netsim.Hooks{DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
		if reason == "aodv:buffer-full" {
			drops++
		}
	}})
	for i := 0; i < 10; i++ {
		sendAt(w, sim.Second, 0, 1, 512)
	}
	w.Run(3 * sim.Second)
	if drops != 6 {
		t.Fatalf("buffer-full drops = %d, want 6", drops)
	}
}

func TestRouterName(t *testing.T) {
	w := chainWorld(t, 2, 100, Config{})
	if w.Node(0).Router().Name() != "aodv" {
		t.Fatal("Name() should be aodv")
	}
}

// Unit tests for the routing-table rules.

func TestTableSequenceRules(t *testing.T) {
	k := sim.NewKernel()
	tbl := newTable(k)
	tbl.update(5, 10, true, 3, 1, sim.Second)
	// Older sequence number must not overwrite.
	tbl.update(5, 9, true, 1, 2, sim.Second)
	r := tbl.validRoute(5)
	if r.nextHop != 1 || r.hops != 3 {
		t.Fatalf("stale update accepted: %+v", r)
	}
	// Same seq, shorter path wins.
	tbl.update(5, 10, true, 2, 3, sim.Second)
	if r := tbl.validRoute(5); r.nextHop != 3 || r.hops != 2 {
		t.Fatalf("shorter path rejected: %+v", r)
	}
	// Newer seq always wins, even when longer.
	tbl.update(5, 11, true, 7, 4, sim.Second)
	if r := tbl.validRoute(5); r.nextHop != 4 || r.hops != 7 {
		t.Fatalf("newer seq rejected: %+v", r)
	}
}

func TestTableExpiry(t *testing.T) {
	k := sim.NewKernel()
	tbl := newTable(k)
	tbl.update(5, 1, true, 1, 1, sim.Second)
	if tbl.validRoute(5) == nil {
		t.Fatal("fresh route should be valid")
	}
	k.Schedule(2*sim.Second, func() {})
	k.Run()
	if tbl.validRoute(5) != nil {
		t.Fatal("expired route should be invalid")
	}
}

func TestTableInvalidateBumpsSeq(t *testing.T) {
	k := sim.NewKernel()
	tbl := newTable(k)
	tbl.update(5, 7, true, 1, 1, sim.Second)
	r := tbl.invalidate(5)
	if r == nil || r.seq != 8 {
		t.Fatalf("invalidate should bump seq: %+v", r)
	}
	if tbl.invalidate(5) != nil {
		t.Fatal("double invalidate should be nil")
	}
}

func TestRoutesVia(t *testing.T) {
	k := sim.NewKernel()
	tbl := newTable(k)
	tbl.update(5, 1, true, 2, 9, sim.Second)
	tbl.update(6, 1, true, 3, 9, sim.Second)
	tbl.update(7, 1, true, 1, 8, sim.Second)
	via := tbl.routesVia(9)
	if len(via) != 2 {
		t.Fatalf("routesVia = %d entries, want 2", len(via))
	}
}

func TestSeqWraparound(t *testing.T) {
	k := sim.NewKernel()
	tbl := newTable(k)
	// Near-wraparound: 2^32-1 then 1 — signed comparison must treat 1 as
	// newer.
	tbl.update(5, ^uint32(0), true, 2, 1, sim.Second)
	tbl.update(5, 1, true, 5, 2, sim.Second)
	if r := tbl.validRoute(5); r.nextHop != 2 {
		t.Fatalf("wraparound comparison failed: %+v", r)
	}
}

// TestSeenEntriesExpire guards the fix for the unbounded RREQ dedup table:
// the seed implementation never retired seen entries; they must now expire
// after PATH_DISCOVERY_TIME via the lazy heap.
func TestSeenEntriesExpire(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	sendAt(w, sim.Second, 0, 2, 128)
	w.Run(3 * sim.Second)
	r1 := w.Node(1).Router().(*Router)
	if r1.SeenEntries() == 0 {
		t.Fatal("precondition: relay recorded no RREQ dedup entries")
	}
	w.Kernel.RunUntil(w.Kernel.Now() + 3*r1.cfg.netTraversalTime())
	r1.purge()
	if got := r1.SeenEntries(); got != 0 {
		t.Fatalf("seen entries after PATH_DISCOVERY_TIME = %d, want 0", got)
	}
}
