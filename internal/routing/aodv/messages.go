// Package aodv implements the Ad hoc On-demand Distance Vector routing
// protocol of RFC 3561, the first of the three protocols the paper
// evaluates (§III-B.2): on-demand route discovery by RREQ flooding with
// reverse-path setup, RREP confirmation along the reverse path, destination
// sequence numbers for loop freedom, HELLO-based and data-link-based link
// sensing, and RERR propagation to precursors on link breakage.
package aodv

import (
	"cavenet/internal/netsim"
)

// Wire sizes in bytes (RFC 3561 message formats, without IP header).
const (
	rreqBytes     = 24
	rrepBytes     = 20
	rerrBaseBytes = 12
	rerrDestBytes = 8
	helloBytes    = rrepBytes
)

// RREQ is a route request, flooded toward the destination.
type RREQ struct {
	HopCount    int
	ID          uint32 // RREQ ID, unique per originator
	Dst         netsim.NodeID
	DstSeq      uint32
	DstSeqKnown bool
	Src         netsim.NodeID
	SrcSeq      uint32
}

// RREP is a route reply, unicast hop-by-hop along the reverse path. A HELLO
// message is an RREP with Dst == the sender and HopCount == 0, broadcast
// with TTL 1 (RFC 3561 §6.9).
type RREP struct {
	HopCount int
	Dst      netsim.NodeID // destination the route leads to
	DstSeq   uint32
	Src      netsim.NodeID // originator that requested the route
	Lifetime int64         // milliseconds of validity
	Hello    bool
}

// UnreachableDst names one destination lost due to a link break.
type UnreachableDst struct {
	Dst netsim.NodeID
	Seq uint32
}

// RERR reports broken routes to upstream precursors.
type RERR struct {
	Unreachable []UnreachableDst
}

func rerrSize(n int) int { return rerrBaseBytes + n*rerrDestBytes }
