// Package gpsr implements Greedy Perimeter Stateless Routing (Karp &
// Kung, MobiCom 2000): geographic forwarding for position-aware networks
// such as the VANET worlds this simulator models.
//
// Every node periodically beacons its position; each receiver keeps a
// neighbor table of the positions it heard, expired lazily after a hold
// time. A data packet is stamped at its origin with the destination's
// position (an idealized location service — see Node.PeerPosition) and
// then forwarded greedily: each hop relays to the neighbor strictly
// closest to the destination. When no neighbor improves on the current
// node — a local maximum at the edge of a radio void — the packet enters
// perimeter mode and walks the faces of the Gabriel-planarized neighbor
// graph by the right-hand rule until it reaches a node closer to the
// destination than where greedy forwarding failed, then resumes greedy.
//
// Unlike AODV/DYMO (reactive) and OLSR (proactive link state), GPSR keeps
// no routes at all: per-node state is one beacon-fed neighbor table, and
// control overhead is independent of traffic and of network diameter.
//
// Greedy next-hop selection runs on a spatial-grid nearest-neighbor query;
// the brute-force scan over the neighbor table is retained as a
// differential oracle behind Config.Oracle and is bit-identical to the
// fast path (the strict (distance, id) order is the same on both sides).
package gpsr

import (
	"fmt"

	"cavenet/internal/geometry"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
	"cavenet/internal/spatial"
)

// beaconBytes is the GPSR beacon payload: the paper's position beacon of
// one address plus two 4-byte coordinates.
const beaconBytes = 12

// Config holds protocol parameters; zero fields take defaults matching
// the paper's simulations (1 s beacons, 3-beacon neighbor hold).
type Config struct {
	BeaconInterval sim.Time // default 1 s
	// NeighborHold is how long a neighbor survives without a fresh beacon
	// (default 3 × BeaconInterval, the AllowedHelloLoss idiom).
	NeighborHold sim.Time
	// Oracle routes greedy decisions through the retained brute-force
	// neighbor scan instead of the spatial-grid fast path. Both produce
	// bit-identical next hops (differential-tested); the switch lets any
	// run be replayed against the oracle.
	Oracle bool
	// CellSize is the neighbor index cell edge in meters (default 250 m,
	// the two-ray receive range bounding neighbor distances). A
	// performance knob only: Nearest is exact, so results are independent
	// of it.
	CellSize float64
}

func (c *Config) normalize() {
	if c.BeaconInterval == 0 {
		c.BeaconInterval = sim.Second
	}
	if c.NeighborHold == 0 {
		c.NeighborHold = 3 * c.BeaconInterval
	}
	if c.CellSize == 0 {
		c.CellSize = 250
	}
}

// Beacon is GPSR's only control message: the sender's current position.
type Beacon struct {
	Pos geometry.Vec2
}

// Packet forwarding modes (Karp & Kung §3.3).
const (
	modeGreedy = iota
	modePerimeter
)

// geoHeader is the per-packet GPSR state, carried in Packet.Payload from
// origin to delivery. The MAC's ACK-loss fork shallow-clones packets, so
// a header pointer may be shared with a sibling copy still in flight —
// every mutation goes through a copy-on-write (see mutate).
type geoHeader struct {
	Mode int
	Dst  geometry.Vec2 // destination position stamped at the origin
	Lp   geometry.Vec2 // position where the packet entered perimeter mode
	Lf   geometry.Vec2 // point where the packet entered the current face
	// First edge traversed on the current face; revisiting it means the
	// face tour closed without progress — the destination is unreachable
	// on the planar graph. E0From < 0 when unset.
	E0From, E0To netsim.NodeID
	// App preserves the original application payload under the header.
	App any
}

// neighbor is one beacon-learned entry.
type neighbor struct {
	pos   geometry.Vec2
	until sim.Time
}

// Router is one node's GPSR instance.
type Router struct {
	cfg  Config
	node *netsim.Node

	neighbors map[netsim.NodeID]neighbor
	expiry    sim.ExpiryHeap[netsim.NodeID]
	grid      *spatial.Grid

	beaconTicker *sim.Ticker
	purgeTicker  *sim.Ticker

	ctrlPackets uint64
	ctrlBytes   uint64

	// Scratch buffers for the perimeter-mode planarization.
	allBuf, planarBuf []netsim.NodeID
}

var _ netsim.Router = (*Router)(nil)

// New builds a GPSR router for node.
func New(node *netsim.Node, cfg Config) *Router {
	cfg.normalize()
	r := &Router{
		cfg:       cfg,
		node:      node,
		neighbors: make(map[netsim.NodeID]neighbor),
		grid:      spatial.NewGrid(cfg.CellSize),
	}
	jitter := func() sim.Time {
		// ±10% emission jitter, standard to decorrelate beacon storms.
		span := int64(cfg.BeaconInterval / 5)
		return sim.Time(node.Rand().Int63n(span) - span/2)
	}
	r.beaconTicker = sim.NewTicker(node.Kernel(), cfg.BeaconInterval, jitter, r.sendBeacon)
	r.purgeTicker = sim.NewTicker(node.Kernel(), sim.Second, nil, r.purge)
	return r
}

// Name implements netsim.Router.
func (r *Router) Name() string { return "gpsr" }

// Start implements netsim.Router.
func (r *Router) Start() {
	r.beaconTicker.Start()
	r.purgeTicker.Start()
}

// Stop implements netsim.Router.
func (r *Router) Stop() {
	r.beaconTicker.Stop()
	r.purgeTicker.Stop()
}

// ControlTraffic implements netsim.Router.
func (r *Router) ControlTraffic() (uint64, uint64) { return r.ctrlPackets, r.ctrlBytes }

// NeighborCount reports the live neighbor-table size (for tests/stats).
func (r *Router) NeighborCount() int { return len(r.neighbors) }

func (r *Router) sendBeacon() {
	p := &netsim.Packet{
		UID:       0, // control packets are not tracked by metrics UIDs
		Kind:      netsim.KindControl,
		Src:       r.node.ID(),
		Dst:       netsim.BroadcastID,
		Port:      netsim.PortRouting,
		TTL:       1,
		Size:      beaconBytes + netsim.IPHeaderBytes,
		Payload:   &Beacon{Pos: r.node.Position()},
		CreatedAt: r.node.Kernel().Now(),
	}
	r.ctrlPackets++
	r.ctrlBytes += uint64(p.Size)
	r.node.SendFrame(netsim.BroadcastID, p)
}

// learnNeighbor installs or refreshes a beacon-learned entry, keeping the
// spatial index in lockstep with the neighbor map.
func (r *Router) learnNeighbor(id netsim.NodeID, pos geometry.Vec2) {
	until := r.node.Kernel().Now() + r.cfg.NeighborHold
	if _, ok := r.neighbors[id]; ok {
		r.grid.Move(int(id), pos)
	} else {
		r.grid.Insert(int(id), pos)
		r.expiry.Push(id, until)
	}
	r.neighbors[id] = neighbor{pos: pos, until: until}
}

// dropNeighbor evicts id from the table and the index (no-op if absent).
func (r *Router) dropNeighbor(id netsim.NodeID) {
	if _, ok := r.neighbors[id]; !ok {
		return
	}
	delete(r.neighbors, id)
	r.grid.Remove(int(id))
}

func (r *Router) purge() {
	now := r.node.Kernel().Now()
	r.expiry.Expire(now,
		func(id netsim.NodeID) (sim.Time, bool) {
			nb, ok := r.neighbors[id]
			return nb.until, ok
		},
		r.dropNeighbor)
}

// Origin implements netsim.Router: stamp the destination position from
// the location service and route.
func (r *Router) Origin(p *netsim.Packet) {
	dstPos, ok := r.node.PeerPosition(p.Dst)
	if !ok {
		r.node.DropData(p, "gpsr:no-location")
		return
	}
	p.Payload = &geoHeader{Mode: modeGreedy, Dst: dstPos, App: p.Payload}
	r.route(p, -1, false)
}

// Receive implements netsim.Router.
func (r *Router) Receive(p *netsim.Packet, from netsim.NodeID) {
	if p.Kind == netsim.KindControl {
		switch msg := p.Payload.(type) {
		case *Beacon:
			r.learnNeighbor(from, msg.Pos)
		default:
			panic(fmt.Sprintf("gpsr: unexpected control payload %T", p.Payload))
		}
		return
	}
	p.TTL--
	if p.TTL <= 0 {
		r.node.DropData(p, "gpsr:ttl")
		return
	}
	// Any relayed beacon (data heard in promiscuous forwarding position)
	// keeps the sender alive implicitly via its own beacons; the data
	// path needs only the header.
	if _, ok := p.Payload.(*geoHeader); !ok {
		// Data that never passed a GPSR origin — impossible in a
		// single-protocol world, unroutable here.
		r.node.DropData(p, "gpsr:no-location")
		return
	}
	r.route(p, from, true)
}

// LinkFailure implements netsim.Router. A failed unicast is stronger
// neighbor-loss evidence than beacon silence: evict immediately so the
// next decision picks another relay, and account the data loss.
func (r *Router) LinkFailure(next netsim.NodeID, p *netsim.Packet) {
	r.dropNeighbor(next)
	if p.Kind != netsim.KindControl {
		r.node.DropData(p, "gpsr:link-failure")
	}
}

// mutate installs and returns a private copy of p's geo header — the
// copy-on-write that keeps MAC-forked sibling packets consistent.
func (r *Router) mutate(p *netsim.Packet, h *geoHeader) *geoHeader {
	c := *h
	p.Payload = &c
	return &c
}

// route decides p's next hop and transmits it. from is the previous hop
// (-1 at the origin); forwarded selects the forward counter.
func (r *Router) route(p *netsim.Packet, from netsim.NodeID, forwarded bool) {
	h := p.Payload.(*geoHeader)
	self := r.node.Position()
	dSelf := self.Dist(h.Dst)

	// A perimeter packet reverts to greedy as soon as the current node is
	// closer to the destination than where perimeter mode began (§3.3).
	if h.Mode == modePerimeter && dSelf < h.Lp.Dist(h.Dst) {
		h = r.mutate(p, h)
		h.Mode = modeGreedy
	}

	if h.Mode == modeGreedy {
		if next, ok := r.greedyNext(h.Dst, dSelf); ok {
			r.send(next, p, forwarded)
			return
		}
		// Local maximum: no neighbor is closer to the destination than
		// this node. Enter perimeter mode here.
		h = r.mutate(p, h)
		h.Mode = modePerimeter
		h.Lp, h.Lf = self, self
		h.E0From, h.E0To = -1, -1
		from = -1 // reference direction becomes the bearing to Dst
	}
	r.perimeterForward(p, h, from, forwarded)
}

// greedyNext picks the neighbor strictly closer to dst than this node,
// minimizing (distance-to-dst, id): the spatial-grid fast path, or the
// retained brute-force oracle when cfg.Oracle is set. Both are
// bit-identical — TestGreedyDifferential proves it over randomized
// neighbor tables including exact ties and empty candidate sets.
func (r *Router) greedyNext(dst geometry.Vec2, dSelf float64) (netsim.NodeID, bool) {
	if r.cfg.Oracle {
		best, bestID := dSelf, netsim.NodeID(-1)
		for id, nb := range r.neighbors {
			d := dst.Dist(nb.pos)
			if d >= dSelf {
				continue
			}
			if bestID < 0 || d < best || (d == best && id < bestID) {
				best, bestID = d, id
			}
		}
		return bestID, bestID >= 0
	}
	id, _, ok := r.grid.Nearest(dst, dSelf)
	return netsim.NodeID(id), ok
}

func (r *Router) send(next netsim.NodeID, p *netsim.Packet, forwarded bool) {
	if forwarded {
		r.node.NoteForward(p)
	}
	r.node.SendFrame(next, p)
}
