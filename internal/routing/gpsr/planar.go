package gpsr

import (
	"math"
	"sort"

	"cavenet/internal/geometry"
	"cavenet/internal/netsim"
)

// This file implements perimeter mode (Karp & Kung §3.2–3.3): planarize
// the local neighbor graph with the Gabriel test, then walk the faces of
// that graph by the right-hand rule, changing faces where the walk
// crosses the line from the perimeter entry point Lp to the destination.
// All geometry is evaluated on beacon-learned positions only — perimeter
// mode needs no state beyond the neighbor table, which is the "stateless"
// of GPSR's name.

// planarNeighbors reports the neighbor ids kept by the Gabriel
// planarization: the edge to v survives iff no other known neighbor w
// lies strictly inside the circle whose diameter is (self, v). Results
// are sorted by id and co-located neighbors (distance 0, undefined
// bearing) are excluded, so the walk is deterministic regardless of map
// iteration order.
func (r *Router) planarNeighbors(self geometry.Vec2) []netsim.NodeID {
	all := r.allBuf[:0]
	for id := range r.neighbors {
		all = append(all, id)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	r.allBuf = all

	keep := r.planarBuf[:0]
	for _, v := range all {
		vp := r.neighbors[v].pos
		if vp == self {
			continue
		}
		mid := geometry.Vec2{X: (self.X + vp.X) / 2, Y: (self.Y + vp.Y) / 2}
		radius := self.Dist(vp) / 2
		witnessed := false
		for _, w := range all {
			if w == v {
				continue
			}
			if r.neighbors[w].pos.Dist(mid) < radius {
				witnessed = true
				break
			}
		}
		if !witnessed {
			keep = append(keep, v)
		}
	}
	r.planarBuf = keep
	return keep
}

// bearing is the angle of the vector from a to b.
func bearing(a, b geometry.Vec2) float64 {
	return math.Atan2(b.Y-a.Y, b.X-a.X)
}

// nextCCW picks the planar neighbor whose bearing from self is the first
// one strictly counterclockwise from ref (deltas in (0, 2π], so the
// reference edge itself is the last resort — the dead-end U-turn). Exact
// bearing ties resolve to the smallest id. Returns the chosen id and its
// absolute bearing; ok=false when planar is empty.
func (r *Router) nextCCW(planar []netsim.NodeID, self geometry.Vec2, ref float64) (id netsim.NodeID, ang float64, ok bool) {
	bestID := netsim.NodeID(-1)
	bestDelta, bestAng := 0.0, 0.0
	for _, v := range planar {
		a := bearing(self, r.neighbors[v].pos)
		d := a - ref
		for d <= 0 {
			d += 2 * math.Pi
		}
		for d > 2*math.Pi {
			d -= 2 * math.Pi
		}
		if bestID < 0 || d < bestDelta || (d == bestDelta && v < bestID) {
			bestID, bestDelta, bestAng = v, d, a
		}
	}
	return bestID, bestAng, bestID >= 0
}

// segmentCross reports the proper intersection point of segments ab and
// cd. Parallel and collinear pairs report no crossing — on the degenerate
// face walk along the Lp–Dst line a face change would make no progress.
func segmentCross(a, b, c, d geometry.Vec2) (geometry.Vec2, bool) {
	rx, ry := b.X-a.X, b.Y-a.Y
	sx, sy := d.X-c.X, d.Y-c.Y
	denom := rx*sy - ry*sx
	if denom == 0 {
		return geometry.Vec2{}, false
	}
	qx, qy := c.X-a.X, c.Y-a.Y
	t := (qx*sy - qy*sx) / denom
	u := (qx*ry - qy*rx) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return geometry.Vec2{}, false
	}
	return geometry.Vec2{X: a.X + t*rx, Y: a.Y + t*ry}, true
}

// perimeterForward walks one hop of the face traversal. h must belong to
// p; from is the previous hop (-1 when perimeter mode was entered at this
// node, making the bearing to the destination the reference direction).
func (r *Router) perimeterForward(p *netsim.Packet, h *geoHeader, from netsim.NodeID, forwarded bool) {
	self := r.node.Position()
	planar := r.planarNeighbors(self)
	if len(planar) == 0 {
		// Isolated on the planar graph: nowhere to walk.
		r.node.DropData(p, "gpsr:no-route")
		return
	}
	// The header is mutated below (Lf, E0); take the private copy once.
	h = r.mutate(p, h)

	ref := bearing(self, h.Dst)
	if nb, ok := r.neighbors[from]; ok && from >= 0 {
		ref = bearing(self, nb.pos)
	}
	// Right-hand rule with face changes: sweep counterclockwise from the
	// reference edge; when the candidate edge crosses the Lp–Dst line
	// closer to the destination than the current face's entry point, the
	// packet moves to the adjacent face instead of traversing the edge,
	// and the sweep continues from the rejected edge. Each iteration
	// consumes one candidate, so len(planar)+1 rounds bound the loop; if
	// it exhausts (pathological float geometry), the packet is unroutable.
	for i := 0; i <= len(planar); i++ {
		next, ang, ok := r.nextCCW(planar, self, ref)
		if !ok {
			break
		}
		nextPos := r.neighbors[next].pos
		if x, crosses := segmentCross(self, nextPos, h.Lp, h.Dst); crosses &&
			x.Dist(h.Dst) < h.Lf.Dist(h.Dst) {
			h.Lf = x
			h.E0From, h.E0To = -1, -1
			ref = ang
			continue
		}
		if h.E0From == r.node.ID() && h.E0To == next {
			// The walk closed the face back onto its first edge without
			// ever getting closer to the destination: unreachable on the
			// planar graph (a true partition, not congestion).
			r.node.DropData(p, "gpsr:unreachable")
			return
		}
		if h.E0From < 0 {
			h.E0From, h.E0To = r.node.ID(), next
		}
		r.send(next, p, forwarded)
		return
	}
	r.node.DropData(p, "gpsr:no-route")
}
