package gpsr

import (
	"math"
	"math/rand"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
	"cavenet/internal/spatial"
	"cavenet/internal/traffic"
)

// bareRouter builds a Router with just the state greedyNext and the
// planarization read — no kernel, no node — for unit-level tests.
func bareRouter(oracle bool) *Router {
	cfg := Config{Oracle: oracle}
	cfg.normalize()
	return &Router{
		cfg:       cfg,
		neighbors: make(map[netsim.NodeID]neighbor),
		grid:      spatial.NewGrid(cfg.CellSize),
	}
}

func (r *Router) testSetNeighbor(id netsim.NodeID, pos geometry.Vec2) {
	if _, ok := r.neighbors[id]; ok {
		r.grid.Move(int(id), pos)
	} else {
		r.grid.Insert(int(id), pos)
	}
	r.neighbors[id] = neighbor{pos: pos}
}

func (r *Router) testDelNeighbor(id netsim.NodeID) {
	if _, ok := r.neighbors[id]; ok {
		delete(r.neighbors, id)
		r.grid.Remove(int(id))
	}
}

// TestGreedyDifferential is the oracle bit-identity proof: across
// randomized neighbor tables (inserts, moves, evictions), random
// destinations and self-distances, the grid-backed fast path and the
// brute-force scan pick the same next hop with the same ok flag —
// including exact-distance ties and detached-radio cases where nothing
// qualifies.
func TestGreedyDifferential(t *testing.T) {
	rnd := rand.New(rand.NewSource(2026))
	fast, oracle := bareRouter(false), bareRouter(true)
	const n = 60
	randPos := func() geometry.Vec2 {
		return geometry.Vec2{X: rnd.Float64()*2000 - 1000, Y: rnd.Float64()*2000 - 1000}
	}
	for step := 0; step < 5000; step++ {
		id := netsim.NodeID(rnd.Intn(n))
		switch rnd.Intn(3) {
		case 0:
			fast.testDelNeighbor(id)
			oracle.testDelNeighbor(id)
		default:
			p := randPos()
			fast.testSetNeighbor(id, p)
			oracle.testSetNeighbor(id, p)
		}
		dst := randPos()
		// Mix tight limits (detached radio: no neighbor qualifies) with
		// generous ones.
		dSelf := rnd.Float64() * 800
		gotID, gotOK := fast.greedyNext(dst, dSelf)
		wantID, wantOK := oracle.greedyNext(dst, dSelf)
		if gotID != wantID || gotOK != wantOK {
			t.Fatalf("step %d: fast = (%d, %v), oracle = (%d, %v) for dst %v dSelf %v",
				step, gotID, gotOK, wantID, wantOK, dst, dSelf)
		}
	}
}

// TestGreedyDifferentialTies pins the tie-break on exactly equidistant
// candidates: both paths must pick the smallest id, independent of
// insertion order.
func TestGreedyDifferentialTies(t *testing.T) {
	fast, oracle := bareRouter(false), bareRouter(true)
	dst := geometry.Vec2{}
	// Four neighbors on a circle around dst — bitwise-equal distances —
	// inserted in descending-id order.
	pts := []geometry.Vec2{{X: 300}, {X: -300}, {Y: 300}, {Y: -300}}
	for i, p := range pts {
		fast.testSetNeighbor(netsim.NodeID(9-i), p)
		oracle.testSetNeighbor(netsim.NodeID(9-i), p)
	}
	gotID, gotOK := fast.greedyNext(dst, 500)
	wantID, wantOK := oracle.greedyNext(dst, 500)
	if !gotOK || !wantOK || gotID != wantID || gotID != 6 {
		t.Fatalf("tie-break: fast = (%d, %v), oracle = (%d, %v), want id 6", gotID, gotOK, wantID, wantOK)
	}
	// Candidates exactly at dSelf are not strictly closer: detached.
	if id, ok := fast.greedyNext(dst, 300); ok {
		t.Fatalf("fast accepted non-improving neighbor %d", id)
	}
	if id, ok := oracle.greedyNext(dst, 300); ok {
		t.Fatalf("oracle accepted non-improving neighbor %d", id)
	}
}

// TestGabrielPlanarization checks the witness rule on a known triangle:
// the long edge whose diameter circle contains the witness is removed,
// short edges survive, and results come back id-sorted.
func TestGabrielPlanarization(t *testing.T) {
	r := bareRouter(false)
	self := geometry.Vec2{}
	// Neighbor 5 sits inside the circle with diameter (self, 2), so the
	// direct edge to 2 is planarized away; 5 and 7 are kept.
	r.testSetNeighbor(2, geometry.Vec2{X: 400, Y: 0})
	r.testSetNeighbor(5, geometry.Vec2{X: 200, Y: 60})
	r.testSetNeighbor(7, geometry.Vec2{X: -100, Y: -100})
	got := r.planarNeighbors(self)
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("planar neighbors = %v, want [5 7]", got)
	}
	// A co-located neighbor (undefined bearing) is excluded.
	r.testSetNeighbor(9, self)
	got = r.planarNeighbors(self)
	for _, id := range got {
		if id == 9 {
			t.Fatal("co-located neighbor survived planarization")
		}
	}
}

// TestNextCCWRightHandRule pins the counterclockwise sweep: from a
// reference bearing, the nearest edge counterclockwise wins, and the
// reference edge itself is chosen only as the dead-end last resort.
func TestNextCCWRightHandRule(t *testing.T) {
	r := bareRouter(false)
	self := geometry.Vec2{}
	r.testSetNeighbor(1, geometry.Vec2{X: 100, Y: 0})  // bearing 0
	r.testSetNeighbor(2, geometry.Vec2{X: 0, Y: 100})  // bearing π/2
	r.testSetNeighbor(3, geometry.Vec2{X: -100, Y: 0}) // bearing π
	planar := r.planarNeighbors(self)
	if len(planar) != 3 {
		t.Fatalf("planar = %v, want all three", planar)
	}
	// Sweep from bearing 0 (toward neighbor 1): first ccw is 2.
	if id, _, ok := r.nextCCW(planar, self, 0); !ok || id != 2 {
		t.Fatalf("ccw from 0 = %d, want 2", id)
	}
	// Sweep from π/2: first ccw is 3.
	if id, _, ok := r.nextCCW(planar, self, math.Pi/2); !ok || id != 3 {
		t.Fatalf("ccw from π/2 = %d, want 3", id)
	}
	// Sweep from just past π: wraps to 1.
	if id, _, ok := r.nextCCW(planar, self, math.Pi+0.01); !ok || id != 1 {
		t.Fatalf("ccw from π+ε = %d, want 1", id)
	}
	// Dead end: only one neighbor — the U-turn back along the reference
	// edge is the last resort, but still taken.
	solo := bareRouter(false)
	solo.testSetNeighbor(4, geometry.Vec2{X: 100, Y: 0})
	planar = solo.planarNeighbors(self)
	if id, _, ok := solo.nextCCW(planar, self, 0); !ok || id != 4 {
		t.Fatalf("dead-end U-turn = %d, want 4", id)
	}
}

func TestSegmentCross(t *testing.T) {
	x, ok := segmentCross(
		geometry.Vec2{X: 0, Y: -10}, geometry.Vec2{X: 0, Y: 10},
		geometry.Vec2{X: -10, Y: 0}, geometry.Vec2{X: 10, Y: 0})
	if !ok || x != (geometry.Vec2{}) {
		t.Fatalf("crossing = %v, %v", x, ok)
	}
	if _, ok := segmentCross(
		geometry.Vec2{X: 0, Y: 1}, geometry.Vec2{X: 10, Y: 1},
		geometry.Vec2{X: 0, Y: 0}, geometry.Vec2{X: 10, Y: 0}); ok {
		t.Fatal("parallel segments reported crossing")
	}
	if _, ok := segmentCross(
		geometry.Vec2{X: 0, Y: 5}, geometry.Vec2{X: 10, Y: 5},
		geometry.Vec2{X: 0, Y: 0}, geometry.Vec2{X: 3, Y: 3}); ok {
		t.Fatal("non-touching segments reported crossing")
	}
}

func staticWorld(t *testing.T, positions []geometry.Vec2, cfg Config) *netsim.World {
	t.Helper()
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  len(positions),
		Seed:   1,
		Static: positions,
	}, func(node *netsim.Node) netsim.Router { return New(node, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func sendAt(w *netsim.World, at sim.Time, src, dst, size int) {
	w.Kernel.Schedule(at, func() {
		n := w.Node(src)
		n.SendData(n.NewPacket(netsim.NodeID(dst), netsim.PortCBR, size))
	})
}

// TestGreedyChainDelivery: pure greedy forwarding down a chain inside
// radio range delivers once beacons have populated neighbor tables.
func TestGreedyChainDelivery(t *testing.T) {
	positions := []geometry.Vec2{{X: 0}, {X: 200}, {X: 400}, {X: 600}}
	w := staticWorld(t, positions, Config{})
	sink := &traffic.Sink{}
	w.Node(3).AttachPort(netsim.PortCBR, sink)
	sendAt(w, 3*sim.Second, 0, 3, 512)
	w.Run(6 * sim.Second)
	if sink.Received != 1 {
		t.Fatalf("delivered %d, want 1", sink.Received)
	}
}

// TestPerimeterRecoversAroundVoid: the destination is greedily
// unreachable from the source (every source neighbor is farther from it),
// so delivery requires perimeter mode to walk around the radio void and
// greedy to resume on the far side.
func TestPerimeterRecoversAroundVoid(t *testing.T) {
	positions := []geometry.Vec2{
		{X: 0, Y: 0},     // 0: source, local maximum toward 4
		{X: 0, Y: 200},   // 1
		{X: 200, Y: 200}, // 2
		{X: 400, Y: 200}, // 3
		{X: 400, Y: 0},   // 4: destination, out of range of 0..2
	}
	w := staticWorld(t, positions, Config{})
	sink := &traffic.Sink{}
	w.Node(4).AttachPort(netsim.PortCBR, sink)
	var dropReasons []string
	w.SetHooks(netsim.Hooks{DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
		dropReasons = append(dropReasons, reason)
	}})
	for i := 0; i < 5; i++ {
		sendAt(w, 3*sim.Second+sim.Time(i)*sim.Second/5, 0, 4, 512)
	}
	w.Run(7 * sim.Second)
	if sink.Received != 5 {
		t.Fatalf("delivered %d/5 around the void (drops: %v)", sink.Received, dropReasons)
	}
}

// TestPartitionDropsExplicitly: a destination beyond every radio is
// dropped with a gpsr:* reason (conservation demands explicit drops, not
// silent loss).
func TestPartitionDropsExplicitly(t *testing.T) {
	w := staticWorld(t, []geometry.Vec2{{X: 0}, {X: 5000}}, Config{})
	drops := map[string]int{}
	w.SetHooks(netsim.Hooks{DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
		drops[reason]++
	}})
	sendAt(w, 3*sim.Second, 0, 1, 512)
	w.Run(6 * sim.Second)
	if drops["gpsr:no-route"] != 1 {
		t.Fatalf("drops = %v, want one gpsr:no-route", drops)
	}
}

// TestBeaconsExpire: a silenced neighbor leaves the table after the hold
// time — the ExpiryHeap purge actually runs.
func TestBeaconsExpire(t *testing.T) {
	positions := []geometry.Vec2{{X: 0}, {X: 200}}
	w := staticWorld(t, positions, Config{})
	w.Run(3 * sim.Second)
	r0 := w.Node(0).Router().(*Router)
	if r0.NeighborCount() != 1 {
		t.Fatalf("node 0 has %d neighbors after 3 s, want 1", r0.NeighborCount())
	}
	// Silence node 1: its radio leaves the air; node 0 must expire the
	// entry within the hold time plus one purge period.
	w.Kernel.Schedule(3*sim.Second+1, func() { w.Node(1).Down(true) })
	w.Run(8 * sim.Second)
	if r0.NeighborCount() != 0 {
		t.Fatalf("node 0 still has %d neighbors after neighbor went down", r0.NeighborCount())
	}
}

// TestOracleRunsIdentical replays the void scenario with the brute-force
// oracle enabled: every observable outcome must match the fast path.
func TestOracleRunsIdentical(t *testing.T) {
	run := func(oracle bool) (uint64, []string) {
		positions := []geometry.Vec2{
			{X: 0, Y: 0}, {X: 0, Y: 200}, {X: 200, Y: 200}, {X: 400, Y: 200}, {X: 400, Y: 0},
		}
		w := staticWorld(t, positions, Config{Oracle: oracle})
		sink := &traffic.Sink{}
		w.Node(4).AttachPort(netsim.PortCBR, sink)
		var drops []string
		w.SetHooks(netsim.Hooks{DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
			drops = append(drops, reason)
		}})
		for i := 0; i < 8; i++ {
			sendAt(w, 2*sim.Second+sim.Time(i)*sim.Second/3, 0, 4, 512)
		}
		w.Run(9 * sim.Second)
		return sink.Received, drops
	}
	fastRecv, fastDrops := run(false)
	oracleRecv, oracleDrops := run(true)
	if fastRecv != oracleRecv || len(fastDrops) != len(oracleDrops) {
		t.Fatalf("fast path (recv %d, drops %v) diverged from oracle (recv %d, drops %v)",
			fastRecv, fastDrops, oracleRecv, oracleDrops)
	}
	for i := range fastDrops {
		if fastDrops[i] != oracleDrops[i] {
			t.Fatalf("drop %d: fast %q vs oracle %q", i, fastDrops[i], oracleDrops[i])
		}
	}
}
