package olsr

import (
	"math/rand"
	"testing"
)

// TestLQEstimatorRingWraparound pins the sliding-window semantics across
// ring wraparound against a brute-force reference window.
func TestLQEstimatorRingWraparound(t *testing.T) {
	const window = 5
	e := newLQEstimator(window)
	rnd := rand.New(rand.NewSource(42))
	var history []bool
	for i := 0; i < 4*window+3; i++ {
		arrived := rnd.Float64() < 0.6
		if arrived {
			e.heard()
		}
		e.tick()
		history = append(history, arrived)

		ref := history
		if len(ref) > window {
			ref = ref[len(ref)-window:]
		}
		hits := 0
		for _, ok := range ref {
			if ok {
				hits++
			}
		}
		want := float64(hits) / float64(len(ref))
		if got := e.ratio(); got != want {
			t.Fatalf("tick %d: ratio = %v, want %v (window %v)", i, got, want, ref)
		}
	}
}

// TestLQEstimatorReset covers estimator recycling when a purged link
// reappears: history must restart from the optimistic prior.
func TestLQEstimatorReset(t *testing.T) {
	e := newLQEstimator(3)
	e.tick()
	e.tick()
	if e.ratio() != 0 {
		t.Fatalf("two silent periods should give 0, got %v", e.ratio())
	}
	e.reset()
	if e.ratio() != 1 {
		t.Fatalf("reset estimator must return the optimistic prior, got %v", e.ratio())
	}
	e.heard()
	e.tick()
	if e.ratio() != 1 {
		t.Fatalf("single hit after reset should give 1, got %v", e.ratio())
	}
}
