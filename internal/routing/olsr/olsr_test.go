package olsr

import (
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
	"cavenet/internal/traffic"
)

func chainWorld(t *testing.T, n int, spacing float64, cfg Config) *netsim.World {
	t.Helper()
	positions := make([]geometry.Vec2, n)
	for i := range positions {
		positions[i] = geometry.Vec2{X: float64(i) * spacing}
	}
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  n,
		Seed:   1,
		Static: positions,
	}, func(node *netsim.Node) netsim.Router { return New(node, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func sendAt(w *netsim.World, at sim.Time, src, dst, size int) {
	w.Kernel.Schedule(at, func() {
		n := w.Node(src)
		n.SendData(n.NewPacket(netsim.NodeID(dst), netsim.PortCBR, size))
	})
}

func TestNeighborSensingSymmetric(t *testing.T) {
	w := chainWorld(t, 2, 100, Config{})
	w.Run(5 * sim.Second)
	r := w.Node(0).Router().(*Router)
	sym := r.symNeighbors()
	if len(sym) != 1 || sym[0] != 1 {
		t.Fatalf("symmetric neighbors = %v, want [1]", sym)
	}
}

func TestRoutesToTwoHop(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	w.Run(6 * sim.Second)
	r := w.Node(0).Router().(*Router)
	next, hops, ok := r.Route(2)
	if !ok || next != 1 || hops != 2 {
		t.Fatalf("route to 2-hop: next=%d hops=%d ok=%v", next, hops, ok)
	}
}

func TestRoutesViaTopology(t *testing.T) {
	// 5-node chain: reaching node 4 from node 0 needs TC dissemination.
	w := chainWorld(t, 5, 200, Config{})
	w.Run(15 * sim.Second)
	r := w.Node(0).Router().(*Router)
	next, hops, ok := r.Route(4)
	if !ok {
		t.Fatal("no route to far node after convergence")
	}
	if next != 1 || hops != 4 {
		t.Fatalf("route = next %d hops %d, want 1/4", next, hops)
	}
}

func TestDataDeliveryAfterConvergence(t *testing.T) {
	w := chainWorld(t, 4, 200, Config{})
	sink := &traffic.Sink{}
	w.Node(3).AttachPort(netsim.PortCBR, sink)
	sendAt(w, 10*sim.Second, 0, 3, 512)
	w.Run(12 * sim.Second)
	if sink.Received != 1 {
		t.Fatalf("delivered %d, want 1", sink.Received)
	}
}

func TestNoRouteBeforeConvergenceDrops(t *testing.T) {
	w := chainWorld(t, 4, 200, Config{})
	var drops int
	w.SetHooks(netsim.Hooks{DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
		if reason == "olsr:no-route" {
			drops++
		}
	}})
	// Send before any HELLO has been exchanged: proactive protocol must
	// drop (no buffering) — the behaviour visible in the paper's Fig. 9.
	sendAt(w, sim.Millisecond, 0, 3, 512)
	w.Run(2 * sim.Second)
	if drops != 1 {
		t.Fatalf("drops = %d, want 1", drops)
	}
}

func TestMPRSelectionChainMiddle(t *testing.T) {
	// In a 3-node chain the middle node is the only path to the far node,
	// so both ends must select it as MPR.
	w := chainWorld(t, 3, 200, Config{})
	w.Run(8 * sim.Second)
	r0 := w.Node(0).Router().(*Router)
	mprs := r0.MPRSet()
	if len(mprs) != 1 || mprs[0] != 1 {
		t.Fatalf("node 0 MPRs = %v, want [1]", mprs)
	}
	// The middle node should know it was selected.
	r1 := w.Node(1).Router().(*Router)
	if len(r1.selectors) == 0 {
		t.Fatal("middle node has empty MPR-selector set")
	}
}

func TestMPRNotNeededInClique(t *testing.T) {
	// Three mutually-connected nodes: no strict 2-hop neighbors, so the
	// MPR set must be empty.
	positions := []geometry.Vec2{{X: 0}, {X: 100}, {X: 50, Y: 50}}
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: 3, Seed: 1, Static: positions,
	}, func(node *netsim.Node) netsim.Router { return New(node, Config{}) })
	if err != nil {
		t.Fatal(err)
	}
	w.Run(8 * sim.Second)
	for i := 0; i < 3; i++ {
		r := w.Node(i).Router().(*Router)
		if mprs := r.MPRSet(); len(mprs) != 0 {
			t.Fatalf("node %d MPRs = %v in a clique", i, mprs)
		}
	}
}

func TestMPRCoverageProperty(t *testing.T) {
	// Star-with-fringe: center node 0; ring of neighbors; fringe nodes
	// reachable through subsets of them. After convergence, every strict
	// 2-hop neighbor of node 0 must be covered by at least one MPR.
	positions := []geometry.Vec2{
		{X: 0, Y: 0},     // 0 center
		{X: 200, Y: 0},   // 1
		{X: 0, Y: 200},   // 2
		{X: 400, Y: 0},   // 3: via 1 only
		{X: 0, Y: 400},   // 4: via 2 only
		{X: 200, Y: 200}, // 5: via 1 and 2
	}
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: 6, Seed: 3, Static: positions,
	}, func(node *netsim.Node) netsim.Router { return New(node, Config{}) })
	if err != nil {
		t.Fatal(err)
	}
	w.Run(10 * sim.Second)
	r := w.Node(0).Router().(*Router)
	mprs := make(map[netsim.NodeID]bool)
	for _, m := range r.MPRSet() {
		mprs[m] = true
	}
	now := w.Kernel.Now()
	sym := make(map[netsim.NodeID]bool)
	for _, s := range r.symNeighbors() {
		sym[s] = true
	}
	coveredBy := make(map[netsim.NodeID]bool)
	r.eachTwoHop(func(nbr, th netsim.NodeID, until sim.Time) {
		if mprs[nbr] {
			coveredBy[th] = true
		}
	})
	r.eachTwoHop(func(nbr, th netsim.NodeID, until sim.Time) {
		if until <= now || sym[th] || th == 0 {
			return
		}
		if !coveredBy[th] {
			t.Fatalf("2-hop node %d not covered by MPR set %v", th, r.MPRSet())
		}
	})
	if !mprs[1] || !mprs[2] {
		t.Fatalf("sole providers must be MPRs; got %v", r.MPRSet())
	}
}

func TestTCOnlyWithSelectors(t *testing.T) {
	// Two isolated nodes: no 2-hop topology → nobody selects MPRs → no TC
	// traffic at all.
	w := chainWorld(t, 2, 100, Config{})
	w.Run(10 * sim.Second)
	for i := 0; i < 2; i++ {
		r := w.Node(i).Router().(*Router)
		if r.topoN != 0 {
			t.Fatalf("node %d learned %d topology tuples without any TC generator", i, r.topoN)
		}
	}
}

func TestLinkFailureFeedbackExpiresLink(t *testing.T) {
	w := chainWorld(t, 2, 100, Config{})
	w.Run(5 * sim.Second)
	r := w.Node(0).Router().(*Router)
	if len(r.symNeighbors()) != 1 {
		t.Fatal("precondition: link up")
	}
	r.LinkFailure(1, &netsim.Packet{Kind: netsim.KindData})
	if len(r.symNeighbors()) != 0 {
		t.Fatal("link-layer failure should expire the link immediately")
	}
}

func TestExpiryPurgesDeadNeighbor(t *testing.T) {
	cfg := Config{}
	w := chainWorld(t, 2, 100, cfg)
	w.Run(5 * sim.Second)
	r := w.Node(0).Router().(*Router)
	if len(r.symNeighbors()) != 1 {
		t.Fatal("precondition failed")
	}
	// Stop node 1's router so its HELLOs cease, then advance well past the
	// neighbor hold time.
	w.Node(1).Router().Stop()
	w.Kernel.Schedule(w.Kernel.Now()+10*sim.Second, func() {})
	w.Kernel.Run()
	r.purge()
	if len(r.symNeighbors()) != 0 {
		t.Fatal("dead neighbor not purged")
	}
}

func TestETXPrefersReliableRoute(t *testing.T) {
	// Unit-level: with ETX, a 2-edge topology path of quality 1.0 must beat
	// a 1-hop-plus-edge path with terrible quality.
	cost := etxCost(1, 1)
	if cost != 1 {
		t.Fatalf("perfect link ETX = %v, want 1", cost)
	}
	bad := etxCost(0.2, 0.2)
	if bad < 24.9 || bad > 25.1 {
		t.Fatalf("lossy link ETX = %v, want ≈25", bad)
	}
	if etxCost(0, 0) <= 0 {
		t.Fatal("unmeasured link cost must stay positive (clamped)")
	}
}

func TestLQEstimatorWindow(t *testing.T) {
	e := newLQEstimator(4)
	if e.ratio() != 1 {
		t.Fatal("optimistic prior should be 1")
	}
	// Pattern: heard, missed, heard, missed → ratio 0.5.
	e.heard()
	e.tick()
	e.tick()
	e.heard()
	e.tick()
	e.tick()
	if got := e.ratio(); got != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", got)
	}
	// Window slides: four straight hits push the misses out.
	for i := 0; i < 4; i++ {
		e.heard()
		e.tick()
	}
	if got := e.ratio(); got != 1 {
		t.Fatalf("ratio after window slide = %v, want 1", got)
	}
}

func TestETXModeEndToEnd(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{ETX: true})
	sink := &traffic.Sink{}
	w.Node(2).AttachPort(netsim.PortCBR, sink)
	sendAt(w, 10*sim.Second, 0, 2, 512)
	w.Run(12 * sim.Second)
	if sink.Received != 1 {
		t.Fatalf("ETX mode delivery failed: %d", sink.Received)
	}
}

func TestControlTrafficGrows(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	w.Run(10 * sim.Second)
	pkts, bytes := w.Node(1).Router().ControlTraffic()
	if pkts < 5 || bytes == 0 {
		t.Fatalf("control traffic = %d pkts %d bytes", pkts, bytes)
	}
}

func TestRouterName(t *testing.T) {
	w := chainWorld(t, 2, 100, Config{})
	if w.Node(0).Router().Name() != "olsr" {
		t.Fatal("Name() should be olsr")
	}
}

func TestDataForwardTTLExpiry(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	w.Run(8 * sim.Second)
	var ttlDrops int
	w.SetHooks(netsim.Hooks{DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
		if reason == "olsr:ttl" {
			ttlDrops++
		}
	}})
	// Inject a packet with TTL 1 at node 0 toward node 2; the relay must
	// kill it.
	w.Kernel.Schedule(w.Kernel.Now(), func() {
		p := w.Node(0).NewPacket(2, netsim.PortCBR, 100)
		p.TTL = 1
		w.Node(0).SendData(p)
	})
	w.Kernel.RunUntil(w.Kernel.Now() + 2*sim.Second)
	if ttlDrops != 1 {
		t.Fatalf("ttl drops = %d, want 1", ttlDrops)
	}
}
