package olsr

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// newBareRouter builds a single-node world whose router the tests drive
// directly through the message handlers.
func newBareRouter(tb testing.TB, cfg Config) (*netsim.World, *Router) {
	tb.Helper()
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes:  1,
		Seed:   1,
		Static: []geometry.Vec2{{}},
	}, func(n *netsim.Node) netsim.Router { return New(n, cfg) })
	if err != nil {
		tb.Fatal(err)
	}
	return w, w.Node(0).Router().(*Router)
}

// feedRandomControlState drives the router through rounds of randomized
// HELLO/TC traffic, link failures and purges, exercising tuple creation,
// refresh, ANSN replacement and soft expiry. It returns the round
// timestamps, so callers can probe exactly at tuple-expiry boundaries.
func feedRandomControlState(w *netsim.World, r *Router, rnd *rand.Rand, etx bool) []sim.Time {
	const nodes = 25
	seq := uint16(0)
	randCode := func() LinkCode {
		return []LinkCode{LinkSym, LinkMPR, LinkAsym, LinkLost}[rnd.Intn(4)]
	}
	var roundAts []sim.Time
	for round := 0; round < 4; round++ {
		at := w.Kernel.Now() + sim.Time(rnd.Int63n(int64(sim.Second))) + 1
		roundAts = append(roundAts, at)
		w.Kernel.Schedule(at, func() {
			for i := 1; i <= nodes; i++ {
				if rnd.Float64() < 0.7 {
					var links []HelloLink
					if rnd.Float64() < 0.8 {
						links = append(links, HelloLink{Neighbor: 0, Code: randCode(), LQ: rnd.Float64()})
					}
					for j := 1; j <= nodes; j++ {
						if j != i && rnd.Float64() < 0.25 {
							links = append(links, HelloLink{Neighbor: netsim.NodeID(j), Code: randCode(), LQ: rnd.Float64()})
						}
					}
					r.handleHello(&Hello{From: netsim.NodeID(i), Links: links}, netsim.NodeID(i))
				}
				if rnd.Float64() < 0.5 {
					seq++
					var adv []netsim.NodeID
					var lqs []float64
					for j := 1; j <= nodes; j++ {
						if j != i && rnd.Float64() < 0.3 {
							adv = append(adv, netsim.NodeID(j))
							lqs = append(lqs, rnd.Float64())
						}
					}
					if len(adv) == 0 {
						continue
					}
					msg := &TC{Origin: netsim.NodeID(i), ANSN: uint16(rnd.Intn(4)), Advertised: adv, Seq: seq}
					if etx {
						msg.LQs = lqs
					}
					from := netsim.NodeID(rnd.Intn(nodes) + 1)
					r.handleTC(&netsim.Packet{Kind: netsim.KindControl, TTL: 1 + rnd.Intn(4)}, msg, from)
				}
			}
			if rnd.Float64() < 0.3 {
				r.LinkFailure(netsim.NodeID(rnd.Intn(nodes)+1), &netsim.Packet{Kind: netsim.KindControl})
			}
			if rnd.Float64() < 0.5 {
				r.purge()
			}
		})
		w.Kernel.Run()
	}
	return roundAts
}

// TestDenseMatchesOracle asserts the acceptance contract of the dense
// kernels: across randomized topologies, routes, MPR sets and the HELLO/TC
// wire contents are bit-identical between the dense recompute and the
// retained map-based oracle.
func TestDenseMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		etx := seed >= 30
		t.Run(fmt.Sprintf("etx=%v/seed=%d", etx, seed), func(t *testing.T) {
			w, r := newBareRouter(t, Config{ETX: etx})
			roundAts := feedRandomControlState(w, r, rand.New(rand.NewSource(seed)), etx)
			if seed%2 == 1 {
				// Odd seeds compare exactly at the third round's
				// NeighborHold boundary: tuples created there and not
				// refreshed since sit exactly on the `until <= now`
				// filter edge, while the final round's links are still
				// alive.
				w.Kernel.RunUntil(roundAts[2] + r.cfg.NeighborHold)
			}
			now := w.Kernel.Now()

			r.cfg.OracleRecompute = false
			r.recomputeNow()
			denseRoutes := r.routesSnapshot()
			denseMPRs := append([]netsim.NodeID(nil), r.mprList...)
			denseHello := r.helloLinks(now)
			denseTC := r.makeTC(now)

			r.cfg.OracleRecompute = true
			r.recomputeNow()
			oracleRoutes := r.routesSnapshot()
			oracleMPRs := append([]netsim.NodeID(nil), r.mprList...)
			oracleHello := r.helloLinks(now)
			oracleTC := r.makeTC(now)

			if !reflect.DeepEqual(denseMPRs, oracleMPRs) {
				t.Fatalf("MPR sets diverge:\n dense: %v\noracle: %v", denseMPRs, oracleMPRs)
			}
			if !reflect.DeepEqual(denseRoutes, oracleRoutes) {
				for id, de := range denseRoutes {
					if oe, ok := oracleRoutes[id]; !ok || oe != de {
						t.Errorf("route %d: dense %+v oracle %+v (ok=%v)", id, de, oe, ok)
					}
				}
				for id := range oracleRoutes {
					if _, ok := denseRoutes[id]; !ok {
						t.Errorf("route %d: only in oracle", id)
					}
				}
				t.Fatalf("route tables diverge (%d vs %d entries)", len(denseRoutes), len(oracleRoutes))
			}
			if !reflect.DeepEqual(denseHello, oracleHello) {
				t.Fatalf("HELLO wire diverges:\n dense: %v\noracle: %v", denseHello, oracleHello)
			}
			if !reflect.DeepEqual(denseTC, oracleTC) {
				t.Fatalf("TC wire diverges:\n dense: %+v\noracle: %+v", denseTC, oracleTC)
			}
		})
	}
}

// TestRecomputeCoalescedPerTimestamp asserts the trigger contract: any
// number of control messages arriving in one kernel timestamp cause at
// most one recompute, and pure lifetime refreshes cause none at all.
func TestRecomputeCoalescedPerTimestamp(t *testing.T) {
	w, r := newBareRouter(t, Config{})
	w.Kernel.Schedule(0, func() {
		r.handleHello(&Hello{From: 1, Links: []HelloLink{{Neighbor: 0, Code: LinkSym}}}, 1)
	})
	w.Kernel.Run()

	base := r.recomputes
	w.Kernel.Schedule(w.Kernel.Now()+sim.Second, func() {
		for i := 0; i < 5; i++ {
			msg := &TC{
				Origin:     netsim.NodeID(10 + i),
				ANSN:       1,
				Advertised: []netsim.NodeID{netsim.NodeID(20 + i)},
				Seq:        uint16(i + 1),
			}
			r.handleTC(&netsim.Packet{Kind: netsim.KindControl, TTL: 4}, msg, 1)
		}
	})
	w.Kernel.Run()
	if got := r.recomputes - base; got != 1 {
		t.Fatalf("5 TCs in one timestamp caused %d recomputes, want 1", got)
	}

	// A HELLO that only refreshes existing lifetimes is immaterial: no
	// recompute at all.
	base = r.recomputes
	w.Kernel.Schedule(w.Kernel.Now()+sim.Second, func() {
		r.handleHello(&Hello{From: 1, Links: []HelloLink{{Neighbor: 0, Code: LinkSym}}}, 1)
	})
	w.Kernel.Run()
	if got := r.recomputes - base; got != 0 {
		t.Fatalf("pure refresh hello caused %d recomputes, want 0", got)
	}

	// Flush interleaving: a read flushes mid-slot, then another material
	// message re-dirties the router. The recompute already pending for
	// this timestamp must stand down — the rebuild coalesces to now+1.
	base = r.recomputes
	at := w.Kernel.Now() + sim.Second
	w.Kernel.Schedule(at, func() {
		tc := func(seq uint16, origin netsim.NodeID) *TC {
			return &TC{Origin: origin, ANSN: 1, Advertised: []netsim.NodeID{netsim.NodeID(90 + seq)}, Seq: 100 + seq}
		}
		r.handleTC(&netsim.Packet{Kind: netsim.KindControl, TTL: 4}, tc(1, 40), 1) // schedules event at `at`
		r.Route(40)                                                                // flush: recompute #1 at `at`
		r.handleTC(&netsim.Packet{Kind: netsim.KindControl, TTL: 4}, tc(2, 41), 1) // re-dirty: schedules at+1
	})
	w.Kernel.Run()
	if got := r.recomputes - base; got != 2 {
		t.Fatalf("flush interleaving caused %d recomputes, want 2 (one per timestamp)", got)
	}
	if r.lastRecompute != at+1 {
		t.Fatalf("second recompute ran at %v, want %v (the stale pending event must stand down)", r.lastRecompute, at+1)
	}
}

// TestRecomputeZeroAlloc asserts the steady-state allocation contract of
// the dense kernels.
func TestRecomputeZeroAlloc(t *testing.T) {
	for _, etx := range []bool{false, true} {
		t.Run(fmt.Sprintf("etx=%v", etx), func(t *testing.T) {
			w, r := newBareRouter(t, Config{ETX: etx})
			feedRandomControlState(w, r, rand.New(rand.NewSource(7)), etx)
			r.recomputeNow() // size the scratch
			allocs := testing.AllocsPerRun(100, func() {
				r.dirty = true
				r.recomputeNow()
			})
			if allocs != 0 {
				t.Fatalf("dense recompute allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestLinkFailureFailsOverSameRecompute: after MAC retry exhaustion on the
// preferred next hop, traffic to a 2-hop destination fails over to the
// alternative relay in the same recompute — no waiting out the hello
// timeout.
func TestLinkFailureFailsOverSameRecompute(t *testing.T) {
	// Diamond: 0 ↔ {1, 2} ↔ 3, with 0 ↔ 3 out of range.
	positions := []geometry.Vec2{
		{X: 0, Y: 0},
		{X: 150, Y: 80},
		{X: 150, Y: -80},
		{X: 300, Y: 0},
	}
	w, err := netsim.NewWorld(netsim.WorldConfig{
		Nodes: 4, Seed: 1, Static: positions,
	}, func(n *netsim.Node) netsim.Router { return New(n, Config{}) })
	if err != nil {
		t.Fatal(err)
	}
	w.Run(8 * sim.Second)
	r0 := w.Node(0).Router().(*Router)
	next, hops, ok := r0.Route(3)
	if !ok || next != 1 || hops != 2 {
		t.Fatalf("precondition: route to 3 = next %d hops %d ok %v, want via 1 (deterministic tie-break)", next, hops, ok)
	}

	// MAC feedback: unicast to 1 exhausted its retries.
	before := w.Kernel.Now()
	r0.LinkFailure(1, &netsim.Packet{Kind: netsim.KindControl})
	next, hops, ok = r0.Route(3)
	if !ok || next != 2 || hops != 2 {
		t.Fatalf("after link failure: route to 3 = next %d hops %d ok %v, want failover via 2", next, hops, ok)
	}
	if w.Kernel.Now() != before {
		t.Fatal("failover must not require simulated time to pass")
	}
	// The dead neighbor itself is rerouted through the surviving relay.
	if next, _, ok = r0.Route(1); !ok || next != 2 {
		t.Fatalf("route to failed neighbor = %d/%v, want via 2", next, ok)
	}
}
