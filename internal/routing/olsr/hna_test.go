package olsr

import (
	"testing"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
	"cavenet/internal/traffic"
)

func TestNetworkAssocContains(t *testing.T) {
	a := NetworkAssoc{From: 100, To: 199}
	if !a.Contains(100) || !a.Contains(150) || !a.Contains(199) {
		t.Fatal("range membership broken")
	}
	if a.Contains(99) || a.Contains(200) {
		t.Fatal("range boundaries broken")
	}
}

// TestHNAGatewayScenario is the paper's §II car-to-hotspot case: the last
// node of a chain is a gateway advertising an external range; the first
// node sends to an external destination and the packet must reach the
// gateway's MANET-side endpoint.
func TestHNAGatewayScenario(t *testing.T) {
	w := chainWorld(t, 4, 200, Config{})
	gw := w.Node(3).Router().(*Router)
	gw.AdvertiseNetwork(NetworkAssoc{From: 1000, To: 1999})

	sink := &traffic.Sink{}
	w.Node(3).AttachPort(netsim.PortCBR, sink)

	// Let HELLO/TC/HNA propagate, then send to the external address 1234.
	w.Kernel.Schedule(15*sim.Second, func() {
		n := w.Node(0)
		n.SendData(n.NewPacket(1234, netsim.PortCBR, 512))
	})
	w.Run(17 * sim.Second)

	if sink.Received != 1 {
		t.Fatalf("gateway endpoint received %d packets, want 1", sink.Received)
	}
	// The source must have resolved the gateway through its HNA set.
	src := w.Node(0).Router().(*Router)
	if got, ok := src.GatewayFor(1234); !ok || got != 3 {
		t.Fatalf("GatewayFor = %v/%v, want node 3", got, ok)
	}
}

func TestHNAUnknownExternalStillDrops(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	var drops int
	w.SetHooks(netsim.Hooks{DataDropped: func(n *netsim.Node, p *netsim.Packet, reason string) {
		if reason == "olsr:no-route" {
			drops++
		}
	}})
	w.Kernel.Schedule(10*sim.Second, func() {
		n := w.Node(0)
		n.SendData(n.NewPacket(5555, netsim.PortCBR, 512))
	})
	w.Run(12 * sim.Second)
	if drops != 1 {
		t.Fatalf("drops = %d; no gateway advertises 5555", drops)
	}
}

func TestHNAExpiresWithGateway(t *testing.T) {
	w := chainWorld(t, 3, 200, Config{})
	gw := w.Node(2).Router().(*Router)
	gw.AdvertiseNetwork(NetworkAssoc{From: 100, To: 100})
	w.Run(12 * sim.Second)
	src := w.Node(0).Router().(*Router)
	if _, ok := src.GatewayFor(100); !ok {
		t.Fatal("precondition: gateway learned")
	}
	// Kill the gateway's HNA emission and advance past the hold time.
	gw.Stop()
	w.Kernel.Schedule(w.Kernel.Now()+20*sim.Second, func() {})
	w.Kernel.Run()
	src.purge()
	if _, ok := src.GatewayFor(100); ok {
		t.Fatal("stale HNA association survived")
	}
}

func TestHNAPicksNearestGateway(t *testing.T) {
	// Two gateways advertise the same range from both ends of a chain; the
	// middle-left node must pick the closer one.
	w := chainWorld(t, 4, 200, Config{})
	w.Node(0).Router().(*Router).AdvertiseNetwork(NetworkAssoc{From: 500, To: 599})
	w.Node(3).Router().(*Router).AdvertiseNetwork(NetworkAssoc{From: 500, To: 599})
	w.Run(15 * sim.Second)
	r1 := w.Node(1).Router().(*Router)
	if gw, ok := r1.GatewayFor(550); !ok || gw != 0 {
		t.Fatalf("node 1 picked gateway %v/%v, want nearest (0)", gw, ok)
	}
	r2 := w.Node(2).Router().(*Router)
	if gw, ok := r2.GatewayFor(550); !ok || gw != 3 {
		t.Fatalf("node 2 picked gateway %v/%v, want nearest (3)", gw, ok)
	}
}
