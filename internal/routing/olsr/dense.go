package olsr

import (
	"sort"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// This file holds the production recompute kernels. They run entirely on
// dense interned indices with reusable scratch buffers — zero steady-state
// heap allocations (asserted by TestRecomputeZeroAlloc) — and produce
// bit-identical MPR sets, routes and wire contents to the map-based oracle
// in oracle.go (asserted by TestDenseMatchesOracle).

// denseScratch holds the reusable buffers of the dense kernels. Per-index
// arrays are epoch-stamped so "clearing" them is a counter increment.
type denseScratch struct {
	// Symmetric neighborhood of the current round, sorted by NodeID (the
	// deterministic candidate order of the greedy MPR pass).
	symList  []int32
	symStamp []uint64
	symSort  idxSorter

	// Strict 2-hop universe, compacted per round.
	thStamp []uint64
	thPos   []int32
	thList  []int32

	// CSR coverage: covTH[covOff[k]:covOff[k+1]] lists the compact 2-hop
	// ids reachable through symList[k].
	covOff []int32
	covTH  []int32

	provCount []int32
	provLast  []int32
	covered   []bool

	// Dijkstra state.
	labeled []int32
	heap    []djNode
}

// djNode is a heap entry: the (cost, hops, next) label of idx when pushed.
type djNode struct {
	cost float64
	hops int32
	next netsim.NodeID
	idx  int32
}

func djLess(a, b djNode) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	if a.next != b.next {
		return a.next < b.next
	}
	return a.idx < b.idx
}

func djPush(h *[]djNode, nd djNode) {
	s := append(*h, nd)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !djLess(s[i], s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

func djPop(h *[]djNode) djNode {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && djLess(s[l], s[min]) {
			min = l
		}
		if r < n && djLess(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
	return top
}

// idxSorter sorts interned indices by their NodeID without allocating (a
// sort.Slice closure would escape); the sorter lives in the scratch so the
// interface conversion reuses its heap pointer.
type idxSorter struct {
	s   []int32
	ids []netsim.NodeID
}

func (x *idxSorter) Len() int           { return len(x.s) }
func (x *idxSorter) Swap(i, j int)      { x.s[i], x.s[j] = x.s[j], x.s[i] }
func (x *idxSorter) Less(i, j int) bool { return x.ids[x.s[i]] < x.ids[x.s[j]] }

// ensureScratch grows the per-index stamp arrays to the interned universe.
func (r *Router) ensureScratch() {
	n := len(r.ids)
	sc := &r.scratch
	for len(sc.symStamp) < n {
		sc.symStamp = append(sc.symStamp, 0)
		sc.thStamp = append(sc.thStamp, 0)
		sc.thPos = append(sc.thPos, 0)
	}
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	return s
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = false
		}
	}
	return s
}

func (r *Router) recomputeDense() {
	now := r.now()
	epoch := r.nextEpoch()
	r.ensureScratch()
	r.denseSelectMPRs(now, epoch)
	r.denseComputeRoutes(now, epoch)
}

// denseSelectMPRs runs the greedy heuristic of RFC 3626 §8.3.1 — sole
// providers first, then repeated max-coverage with ties to the lowest
// NodeID — over CSR coverage lists instead of map-of-maps.
func (r *Router) denseSelectMPRs(now sim.Time, epoch uint64) {
	sc := &r.scratch
	me := r.node.ID()

	sc.symList = sc.symList[:0]
	for _, fi := range r.linkList {
		if r.links[fi].symUntil > now {
			sc.symList = append(sc.symList, fi)
		}
	}
	sc.symSort.s, sc.symSort.ids = sc.symList, r.ids
	sort.Sort(&sc.symSort)
	for _, fi := range sc.symList {
		sc.symStamp[fi] = epoch
	}

	// Coverage: for each symmetric neighbor, the strict 2-hop nodes it
	// reaches (not us, not themselves symmetric neighbors).
	sc.thList = sc.thList[:0]
	sc.covOff = sc.covOff[:0]
	sc.covTH = sc.covTH[:0]
	for _, fi := range sc.symList {
		sc.covOff = append(sc.covOff, int32(len(sc.covTH)))
		for _, e := range r.twoHopOf[fi] {
			if e.until <= now {
				continue
			}
			ti := e.th
			if r.ids[ti] == me || sc.symStamp[ti] == epoch {
				continue
			}
			if sc.thStamp[ti] != epoch {
				sc.thStamp[ti] = epoch
				sc.thPos[ti] = int32(len(sc.thList))
				sc.thList = append(sc.thList, ti)
			}
			sc.covTH = append(sc.covTH, sc.thPos[ti])
		}
	}
	sc.covOff = append(sc.covOff, int32(len(sc.covTH)))

	nth := len(sc.thList)
	sc.provCount = resizeI32(sc.provCount, nth)
	sc.provLast = resizeI32(sc.provLast, nth)
	sc.covered = resizeBool(sc.covered, nth)
	for k := range sc.symList {
		for _, c := range sc.covTH[sc.covOff[k]:sc.covOff[k+1]] {
			sc.provCount[c]++
			sc.provLast[c] = int32(k)
		}
	}

	// Pass 1: neighbors that are the sole route to some 2-hop node.
	r.mprEpoch = epoch
	r.mprList = r.mprList[:0]
	for c := 0; c < nth; c++ {
		if sc.provCount[c] == 1 {
			r.mprStamp[sc.symList[sc.provLast[c]]] = epoch
		}
	}
	uncovered := nth
	for k, fi := range sc.symList {
		if r.mprStamp[fi] != epoch {
			continue
		}
		for _, c := range sc.covTH[sc.covOff[k]:sc.covOff[k+1]] {
			if !sc.covered[c] {
				sc.covered[c] = true
				uncovered--
			}
		}
	}

	// Pass 2: greedy max-coverage until everything reachable is covered.
	for uncovered > 0 {
		best, bestCount := -1, 0
		for k, fi := range sc.symList {
			if r.mprStamp[fi] == epoch {
				continue
			}
			count := 0
			for _, c := range sc.covTH[sc.covOff[k]:sc.covOff[k+1]] {
				if !sc.covered[c] {
					count++
				}
			}
			if count > bestCount {
				best, bestCount = k, count
			}
		}
		if best < 0 {
			break // remaining 2-hop nodes are unreachable; sets will expire
		}
		fi := sc.symList[best]
		r.mprStamp[fi] = epoch
		for _, c := range sc.covTH[sc.covOff[best]:sc.covOff[best+1]] {
			if !sc.covered[c] {
				sc.covered[c] = true
				uncovered--
			}
		}
	}

	for _, fi := range sc.symList { // symList is NodeID-sorted
		if r.mprStamp[fi] == epoch {
			r.mprList = append(r.mprList, r.ids[fi])
		}
	}
}

// denseComputeRoutes rebuilds the routing table (RFC 3626 §10): symmetric
// neighbors at distance 1, 2-hop tuples through distance-1 bases, then a
// lexicographic Dijkstra over the per-origin topology adjacency. All
// weights are ≥ 1 and labels are totally ordered by (cost, hops, next), so
// the result equals the oracle's relax-to-fixpoint outcome exactly.
func (r *Router) denseComputeRoutes(now sim.Time, epoch uint64) {
	sc := &r.scratch
	me := r.node.ID()
	r.routeEpoch = epoch
	sc.labeled = sc.labeled[:0]

	// Phase 1: symmetric neighbors at distance 1.
	for _, fi := range sc.symList {
		r.routeOf[fi] = routeEntry{next: r.ids[fi], hops: 1, cost: r.linkCost(&r.links[fi])}
		r.routeStamp[fi] = epoch
		sc.labeled = append(sc.labeled, fi)
	}

	// Phase 2: 2-hop tuples in sorted (neighbor, 2-hop) order. The base
	// must still be a distance-1 route when each tuple is visited — this
	// single pass is order-dependent, so the order is part of the shared
	// contract with the oracle.
	for _, fi := range sc.symList {
		for _, e := range r.twoHopOf[fi] {
			if e.until <= now || r.ids[e.th] == me {
				continue
			}
			base := r.routeOf[fi]
			if r.routeStamp[fi] != epoch || base.hops != 1 {
				continue
			}
			cand := routeEntry{next: r.ids[fi], hops: 2, cost: base.cost + 1}
			ti := e.th
			if r.routeStamp[ti] != epoch {
				r.routeStamp[ti] = epoch
				r.routeOf[ti] = cand
				sc.labeled = append(sc.labeled, ti)
			} else if lessRoute(cand, r.routeOf[ti]) {
				r.routeOf[ti] = cand
			}
		}
	}

	// Phase 3: Dijkstra over topology edges, seeded with every label so
	// far. Stale heap entries are skipped by comparing against the live
	// label; strictly positive weights make popped labels final.
	sc.heap = sc.heap[:0]
	for _, idx := range sc.labeled {
		e := r.routeOf[idx]
		djPush(&sc.heap, djNode{cost: e.cost, hops: int32(e.hops), next: e.next, idx: idx})
	}
	for len(sc.heap) > 0 {
		nd := djPop(&sc.heap)
		cur := r.routeOf[nd.idx]
		if r.routeStamp[nd.idx] != epoch ||
			cur.cost != nd.cost || int32(cur.hops) != nd.hops || cur.next != nd.next {
			continue // superseded while queued
		}
		for _, e := range r.topoOf[nd.idx] {
			if e.until <= now || r.ids[e.dest] == me {
				continue
			}
			w := 1.0
			if r.cfg.ETX && e.linkLQ > 0 {
				w = etxCost(e.linkLQ, e.linkLQ)
			}
			cand := routeEntry{next: cur.next, hops: cur.hops + 1, cost: cur.cost + w}
			di := e.dest
			if r.routeStamp[di] != epoch {
				r.routeStamp[di] = epoch
				r.routeOf[di] = cand
			} else if lessRoute(cand, r.routeOf[di]) {
				r.routeOf[di] = cand
			} else {
				continue
			}
			djPush(&sc.heap, djNode{cost: cand.cost, hops: int32(cand.hops), next: cand.next, idx: di})
		}
	}
}
