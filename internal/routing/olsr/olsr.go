// Package olsr implements the Optimized Link State Routing protocol of
// RFC 3626 (§III-B.1 of the paper): HELLO-based link sensing with
// symmetric/asymmetric link states, 2-hop neighborhood tracking, greedy
// Multi-Point Relay (MPR) selection, TC dissemination through MPR
// forwarding, and shortest-path route computation. The olsrd LQ/ETX
// extension described by the paper is available as an option.
//
// The control plane is built for scale: NodeIDs are interned to small
// dense indices per router, MPR/route recomputation runs on reusable
// slice/stamp scratch (zero steady-state allocations), recompute triggers
// are coalesced to at most one run per kernel timestamp through a dirty
// flag, and tuple expiry is tracked by lazy min-heaps so the periodic
// purge costs O(expired) instead of sweeping every live entry. The
// original map-based recompute is retained in oracle.go as the
// differential-testing reference (Config.OracleRecompute).
package olsr

import (
	"fmt"
	"sort"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// LinkCode describes a link's state as advertised inside a HELLO.
type LinkCode int

// Link codes (RFC 3626 §6.1.1, collapsed to the useful subset).
const (
	LinkSym LinkCode = iota + 1
	LinkAsym
	LinkLost
	LinkMPR // symmetric link to a neighbor we selected as MPR
)

// HelloLink is one link entry inside a HELLO message.
type HelloLink struct {
	Neighbor netsim.NodeID
	Code     LinkCode
	// LQ is the sender's measured hello-arrival ratio on this link,
	// included only when the ETX extension is enabled.
	LQ float64
}

// Hello is the neighborhood-sensing message (RFC 3626 §6).
type Hello struct {
	From  netsim.NodeID
	Links []HelloLink
}

// TC is the topology-control message (RFC 3626 §9).
type TC struct {
	Origin     netsim.NodeID
	ANSN       uint16
	Advertised []netsim.NodeID
	Seq        uint16
	// LQs mirrors Advertised with the originator's link quality to each
	// advertised neighbor (ETX extension only).
	LQs []float64
}

func helloBytes(links int) int { return 16 + 6*links }
func tcBytes(adv int) int      { return 16 + 4*adv }

// Config holds protocol parameters; zero fields take RFC defaults with the
// paper's Table I intervals.
type Config struct {
	HelloInterval sim.Time // default 1 s (Table I)
	TCInterval    sim.Time // default 2 s (Table I)
	NeighborHold  sim.Time // default 3 × HelloInterval
	TopologyHold  sim.Time // default 3 × TCInterval
	DupHold       sim.Time // default 30 s
	// ETX enables the olsrd link-quality extension: routes minimize the sum
	// of ETX(i) = 1/(NI(i)·LQI(i)) instead of hop count.
	ETX bool
	// LQWindow is the sampling window (in hello periods) for packet-arrival
	// estimation; default 10.
	LQWindow int
	// OracleRecompute routes MPR/route recomputation through the retained
	// map-based reference implementation instead of the dense kernels. It
	// exists for differential tests and benchmarks; simulations should
	// leave it off.
	OracleRecompute bool
}

func (c *Config) normalize() {
	if c.HelloInterval == 0 {
		c.HelloInterval = sim.Second
	}
	if c.TCInterval == 0 {
		c.TCInterval = 2 * sim.Second
	}
	if c.NeighborHold == 0 {
		c.NeighborHold = 3 * c.HelloInterval
	}
	if c.TopologyHold == 0 {
		c.TopologyHold = 3 * c.TCInterval
	}
	if c.DupHold == 0 {
		c.DupHold = 30 * sim.Second
	}
	if c.LQWindow == 0 {
		c.LQWindow = 10
	}
}

// linkTuple is the link-set entry of RFC 3626 §4.2, stored in a dense
// per-router slot addressed by the neighbor's interned index.
type linkTuple struct {
	present bool
	// inSymHeap is true while symExp holds an entry for this index; it
	// dedups pushes so the heap keeps one item per once-symmetric link.
	inSymHeap bool
	neighbor  netsim.NodeID
	symUntil  sim.Time
	asymUntil sim.Time
	until     sim.Time
	// lq estimates the hello-arrival ratio for ETX; retained (and reset)
	// across tuple reincarnations to avoid reallocation.
	lq *lqEstimator
}

// twoHopEdge is one 2-hop tuple (neighbor → th), stored in the neighbor's
// edge list sorted by the 2-hop node's NodeID — the iteration order the
// route/MPR kernels and the oracle share.
type twoHopEdge struct {
	th    int32 // interned 2-hop node
	until sim.Time
}

// topoEdge is one topology tuple (origin → dest); the per-origin edge
// lists double as the adjacency list of the route Dijkstra.
type topoEdge struct {
	dest   int32
	ansn   uint16
	until  sim.Time
	linkLQ float64 // originator's LQ toward dest (ETX mode)
}

type dupKey struct {
	origin netsim.NodeID
	seq    uint16
}

type routeEntry struct {
	next netsim.NodeID
	hops int
	cost float64
}

// Router is one node's OLSR instance.
type Router struct {
	cfg  Config
	node *netsim.Node

	// NodeID interning: every node mentioned by control traffic gets a
	// small dense index so the recompute kernels run over slices and
	// epoch-stamp arrays instead of maps. Indices are never recycled; the
	// universe is bounded by the number of distinct nodes ever heard of.
	idxOf map[netsim.NodeID]int32
	ids   []netsim.NodeID

	links    []linkTuple // slot per interned id
	linkList []int32     // indices of present link tuples
	linkPos  []int32     // position of an index in linkList; -1 if absent

	twoHopOf [][]twoHopEdge // per 1-hop neighbor, sorted by 2-hop NodeID
	twoHopN  int

	topoOf     [][]topoEdge // per TC originator
	topoInHeap []bool
	topoN      int

	selectors map[netsim.NodeID]sim.Time // nodes that chose us as MPR
	dups      sim.ExpiringSet[dupKey]

	// Lazy expiry heaps: one item per live entry, surfaced at the deadline
	// recorded when the entry was created and re-registered when the entry
	// turns out to have been refreshed (see sim.ExpiryHeap).
	linkExp   sim.ExpiryHeap[int32]
	symExp    sim.ExpiryHeap[int32]
	twoHopExp sim.ExpiryHeap[[2]int32]
	topoExp   sim.ExpiryHeap[int32]
	selExp    sim.ExpiryHeap[netsim.NodeID]

	// Recompute output, epoch-stamped per interned index. A stamp equal to
	// the current (non-zero) epoch marks the entry live; clearing the
	// table is a counter increment, not a sweep.
	epochCounter uint64
	routeOf      []routeEntry
	routeStamp   []uint64
	routeEpoch   uint64
	mprStamp     []uint64
	mprEpoch     uint64
	mprList      []netsim.NodeID // sorted by NodeID

	// Coalesced recompute: handlers mark the router dirty and schedule at
	// most one recompute event per kernel timestamp; reads flush
	// synchronously so observable state is never stale.
	dirty         bool
	lastRecompute sim.Time
	recomputes    uint64
	// eagerRecompute disables coalescing and change filtering: every
	// handler invocation recomputes synchronously, material or not. It
	// reconstructs the seed implementation's cost profile for the
	// before/after benchmarks (set directly, in-package only).
	eagerRecompute bool

	scratch denseScratch

	hnaLocal []NetworkAssoc
	hnaSet   []*hnaTuple

	ansn   uint16
	msgSeq uint16

	helloTicker *sim.Ticker
	tcTicker    *sim.Ticker
	purgeTicker *sim.Ticker
	hnaTicker   *sim.Ticker

	ctrlPackets uint64
	ctrlBytes   uint64
}

var _ netsim.Router = (*Router)(nil)

// New builds an OLSR router for node.
func New(node *netsim.Node, cfg Config) *Router {
	cfg.normalize()
	r := &Router{
		cfg:           cfg,
		node:          node,
		idxOf:         make(map[netsim.NodeID]int32),
		selectors:     make(map[netsim.NodeID]sim.Time),
		lastRecompute: -1,
	}
	jitter := func() sim.Time {
		span := int64(cfg.HelloInterval / 5)
		return sim.Time(node.Rand().Int63n(span) - span/2)
	}
	r.helloTicker = sim.NewTicker(node.Kernel(), cfg.HelloInterval, jitter, r.sendHello)
	r.tcTicker = sim.NewTicker(node.Kernel(), cfg.TCInterval, jitter, r.sendTC)
	r.purgeTicker = sim.NewTicker(node.Kernel(), cfg.HelloInterval/2, nil, r.purge)
	return r
}

// intern maps id to its dense index, growing every per-index array when the
// id is new.
func (r *Router) intern(id netsim.NodeID) int32 {
	if i, ok := r.idxOf[id]; ok {
		return i
	}
	i := int32(len(r.ids))
	r.idxOf[id] = i
	r.ids = append(r.ids, id)
	r.links = append(r.links, linkTuple{})
	r.linkPos = append(r.linkPos, -1)
	r.twoHopOf = append(r.twoHopOf, nil)
	r.topoOf = append(r.topoOf, nil)
	r.topoInHeap = append(r.topoInHeap, false)
	r.routeOf = append(r.routeOf, routeEntry{})
	r.routeStamp = append(r.routeStamp, 0)
	r.mprStamp = append(r.mprStamp, 0)
	return i
}

// Name implements netsim.Router.
func (r *Router) Name() string { return "olsr" }

// Start implements netsim.Router.
func (r *Router) Start() {
	r.helloTicker.StartNow()
	r.tcTicker.Start()
	r.purgeTicker.Start()
}

// Stop implements netsim.Router.
func (r *Router) Stop() {
	r.helloTicker.Stop()
	r.tcTicker.Stop()
	r.purgeTicker.Stop()
	if r.hnaTicker != nil {
		r.hnaTicker.Stop()
	}
}

// ControlTraffic implements netsim.Router.
func (r *Router) ControlTraffic() (uint64, uint64) { return r.ctrlPackets, r.ctrlBytes }

// TableStats reports live control-state sizes, including the expiry-heap
// backlog (for analysis and the memory-stability tests).
type TableStats struct {
	Links     int
	TwoHop    int
	Topology  int
	Selectors int
	Dups      int
	HeapItems int
}

// TableStats implements the memory introspection used by stability tests.
func (r *Router) TableStats() TableStats {
	return TableStats{
		Links:     len(r.linkList),
		TwoHop:    r.twoHopN,
		Topology:  r.topoN,
		Selectors: len(r.selectors),
		Dups:      r.dups.Len(),
		HeapItems: r.linkExp.Len() + r.symExp.Len() + r.twoHopExp.Len() +
			r.topoExp.Len() + r.selExp.Len() + r.dups.Deadlines(),
	}
}

// MPRSet returns the current multipoint relays (for tests and analysis).
func (r *Router) MPRSet() []netsim.NodeID {
	r.flush()
	return append([]netsim.NodeID(nil), r.mprList...)
}

// isMPR reports whether the interned neighbor was selected as MPR by the
// last recompute.
func (r *Router) isMPR(fi int32) bool {
	return r.mprEpoch != 0 && r.mprStamp[fi] == r.mprEpoch
}

// Route reports the computed next hop toward dst.
func (r *Router) Route(dst netsim.NodeID) (next netsim.NodeID, hops int, ok bool) {
	r.flush()
	e, found := r.routeFor(dst)
	if !found {
		return 0, 0, false
	}
	return e.next, e.hops, true
}

// routeFor looks dst up in the epoch-stamped route table.
func (r *Router) routeFor(dst netsim.NodeID) (routeEntry, bool) {
	if r.routeEpoch == 0 {
		return routeEntry{}, false
	}
	i, ok := r.idxOf[dst]
	if !ok || r.routeStamp[i] != r.routeEpoch {
		return routeEntry{}, false
	}
	return r.routeOf[i], true
}

// routesSnapshot materializes the route table as a map (tests only).
func (r *Router) routesSnapshot() map[netsim.NodeID]routeEntry {
	out := make(map[netsim.NodeID]routeEntry)
	if r.routeEpoch == 0 {
		return out
	}
	for i, id := range r.ids {
		if r.routeStamp[i] == r.routeEpoch {
			out[id] = r.routeOf[i]
		}
	}
	return out
}

func (r *Router) now() sim.Time { return r.node.Kernel().Now() }

// noteChange is the handlers' recompute trigger: material changes mark the
// router dirty (pure lifetime refreshes never force a rebuild). In eager
// mode every call recomputes immediately, replicating the seed's
// per-message rebuild for benchmarking.
func (r *Router) noteChange(material bool) {
	if r.eagerRecompute {
		r.recomputeNow()
		return
	}
	if material {
		r.markDirty()
	}
}

// markDirty notes that state feeding MPR selection or route computation
// changed, and schedules at most one coalesced recompute per kernel
// timestamp: a node forwarding k TCs in one slot pays one rebuild, not k.
func (r *Router) markDirty() {
	if r.dirty {
		return
	}
	r.dirty = true
	at := r.now()
	if at <= r.lastRecompute {
		// A recompute already ran at this timestamp (a read flushed);
		// nudge the coalesced run one tick so the once-per-timestamp
		// contract holds.
		at = r.lastRecompute + 1
	}
	r.node.Kernel().ScheduleArg(at, recomputeEvent, r)
}

// recomputeEvent is the package-level coalesced-recompute callback (no
// closure allocation; see sim.ScheduleArg).
func recomputeEvent(a any) {
	r := a.(*Router)
	// If a read already flushed at this timestamp and a later change
	// re-dirtied the router, that markDirty scheduled a fresh event at
	// now+1 — running here would be a second rebuild in one timestamp,
	// breaking the ≤1-recompute-per-(node, timestamp) contract.
	if r.dirty && r.lastRecompute != r.now() {
		r.recomputeNow()
	}
}

// flush recomputes synchronously if state changed since the last run, so
// reads (route lookups, MPR queries, wire emission) never observe staleness
// from the coalescing.
func (r *Router) flush() {
	if r.dirty {
		r.recomputeNow()
	}
}

func (r *Router) recomputeNow() {
	r.dirty = false
	r.lastRecompute = r.now()
	r.recomputes++
	if r.cfg.OracleRecompute {
		r.recomputeOracle()
	} else {
		r.recomputeDense()
	}
}

func (r *Router) nextEpoch() uint64 {
	r.epochCounter++
	return r.epochCounter
}

func (r *Router) sendControl(ttl, size int, msg any) {
	p := &netsim.Packet{
		Kind:      netsim.KindControl,
		Src:       r.node.ID(),
		Dst:       netsim.BroadcastID,
		Port:      netsim.PortRouting,
		TTL:       ttl,
		Size:      size + netsim.IPHeaderBytes,
		Payload:   msg,
		CreatedAt: r.now(),
	}
	r.ctrlPackets++
	r.ctrlBytes += uint64(p.Size)
	r.node.SendFrame(netsim.BroadcastID, p)
}

// symNeighbors lists neighbors with currently symmetric links.
func (r *Router) symNeighbors() []netsim.NodeID {
	now := r.now()
	var out []netsim.NodeID
	for _, fi := range r.linkList {
		if r.links[fi].symUntil > now {
			out = append(out, r.links[fi].neighbor)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// eachTwoHop visits every stored 2-hop tuple (for tests and the oracle).
func (r *Router) eachTwoHop(f func(nbr, th netsim.NodeID, until sim.Time)) {
	for fi, edges := range r.twoHopOf {
		for _, e := range edges {
			f(r.ids[fi], r.ids[e.th], e.until)
		}
	}
}

// helloLinks builds the link advertisements of a HELLO from current state.
func (r *Router) helloLinks(now sim.Time) []HelloLink {
	var links []HelloLink
	for _, fi := range r.linkList {
		lt := &r.links[fi]
		if lt.until <= now {
			continue
		}
		var code LinkCode
		switch {
		case lt.symUntil > now:
			if r.isMPR(fi) {
				code = LinkMPR
			} else {
				code = LinkSym
			}
		case lt.asymUntil > now:
			code = LinkAsym
		default:
			code = LinkLost
		}
		hl := HelloLink{Neighbor: lt.neighbor, Code: code}
		if r.cfg.ETX && lt.lq != nil {
			hl.LQ = lt.lq.ratio()
		}
		links = append(links, hl)
	}
	sort.Slice(links, func(i, j int) bool { return links[i].Neighbor < links[j].Neighbor })
	return links
}

func (r *Router) sendHello() {
	r.flush()
	now := r.now()
	links := r.helloLinks(now)
	r.sendControl(1, helloBytes(len(links)), &Hello{From: r.node.ID(), Links: links})
	// Advance every neighbor's expected-hello window.
	if r.cfg.ETX {
		for _, fi := range r.linkList {
			if lt := &r.links[fi]; lt.lq != nil {
				lt.lq.tick()
			}
		}
	}
}

// makeTC assembles the TC advertisement from the current selector set, or
// nil when there is nothing to advertise (RFC 3626 §9.3). The message
// sequence number is assigned by sendTC.
func (r *Router) makeTC(now sim.Time) *TC {
	var adv []netsim.NodeID
	for id, until := range r.selectors {
		if until > now {
			adv = append(adv, id)
		}
	}
	if len(adv) == 0 {
		return nil
	}
	sort.Slice(adv, func(i, j int) bool { return adv[i] < adv[j] })
	msg := &TC{Origin: r.node.ID(), ANSN: r.ansn, Advertised: adv}
	if r.cfg.ETX {
		msg.LQs = make([]float64, len(adv))
		for i, id := range adv {
			if fi, ok := r.idxOf[id]; ok {
				if lt := &r.links[fi]; lt.present && lt.lq != nil {
					msg.LQs[i] = lt.lq.ratio()
				}
			}
		}
	}
	return msg
}

func (r *Router) sendTC() {
	now := r.now()
	msg := r.makeTC(now)
	if msg == nil {
		return // RFC 3626 §9.3: TC only with a non-empty selector set
	}
	r.msgSeq++
	msg.Seq = r.msgSeq
	r.recordDup(dupKey{origin: msg.Origin, seq: msg.Seq}, now)
	r.sendControl(netsim.DefaultTTL, tcBytes(len(msg.Advertised)), msg)
}

// recordDup installs a duplicate-suppression entry; keys are unique per
// message, so one insert per key suffices.
func (r *Router) recordDup(key dupKey, now sim.Time) {
	r.dups.Add(key, now+r.cfg.DupHold)
}

// Receive implements netsim.Router.
func (r *Router) Receive(p *netsim.Packet, from netsim.NodeID) {
	if p.Kind == netsim.KindControl {
		switch msg := p.Payload.(type) {
		case *Hello:
			r.handleHello(msg, from)
		case *TC:
			r.handleTC(p, msg, from)
		case *HNA:
			r.handleHNA(p, msg, from)
		default:
			panic(fmt.Sprintf("olsr: unexpected control payload %T", p.Payload))
		}
		return
	}
	r.forwardData(p)
}

// Origin implements netsim.Router.
func (r *Router) Origin(p *netsim.Packet) {
	next, ok := r.nextHopFor(p.Dst)
	if !ok {
		// Proactive protocol: no buffering, packets without a current route
		// are lost — a behaviour the paper's Fig. 9/11 comparison exposes.
		r.node.DropData(p, "olsr:no-route")
		return
	}
	r.node.SendFrame(next, p)
}

// nextHopFor resolves a destination through the routing table, falling
// back to the HNA association set for external destinations.
func (r *Router) nextHopFor(dst netsim.NodeID) (netsim.NodeID, bool) {
	r.flush()
	if e, ok := r.routeFor(dst); ok {
		return e.next, true
	}
	if gw, ok := r.GatewayFor(dst); ok {
		if e, ok := r.routeFor(gw); ok {
			return e.next, true
		}
	}
	return 0, false
}

func (r *Router) forwardData(p *netsim.Packet) {
	if r.localAssoc(p.Dst) {
		// We are the gateway for this external destination: the packet has
		// reached the MANET-side endpoint.
		r.node.DeliverLocal(p)
		return
	}
	p.TTL--
	if p.TTL <= 0 {
		r.node.DropData(p, "olsr:ttl")
		return
	}
	next, ok := r.nextHopFor(p.Dst)
	if !ok {
		r.node.DropData(p, "olsr:no-forward-route")
		return
	}
	r.node.NoteForward(p)
	r.node.SendFrame(next, p)
}

func (r *Router) handleHello(msg *Hello, from netsim.NodeID) {
	now := r.now()
	hold := r.cfg.NeighborHold
	fi := r.intern(from)
	lt := &r.links[fi]
	material := false
	if !lt.present {
		// Reincarnate the slot with fresh link state; the symExp flag must
		// survive (its heap entry, if any, is still registered).
		*lt = linkTuple{present: true, neighbor: from, inSymHeap: lt.inSymHeap, lq: lt.lq}
		if r.cfg.ETX {
			if lt.lq == nil {
				lt.lq = newLQEstimator(r.cfg.LQWindow)
			} else {
				lt.lq.reset()
			}
		}
		r.linkPos[fi] = int32(len(r.linkList))
		r.linkList = append(r.linkList, fi)
		r.linkExp.Push(fi, now+hold)
		material = true
	}
	lt.asymUntil = now + hold
	lt.until = now + hold
	if lt.lq != nil {
		lt.lq.heard()
	}

	me := r.node.ID()
	wasSym := lt.symUntil > now
	selected := false
	for _, hl := range msg.Links {
		if hl.Neighbor != me {
			continue
		}
		if hl.Code == LinkMPR {
			selected = true
		}
		if hl.Code != LinkLost {
			// The neighbor hears us: the link is symmetric.
			lt.symUntil = now + hold
		}
	}
	if lt.symUntil > now && !wasSym {
		material = true
		if !lt.inSymHeap {
			lt.inSymHeap = true
			r.symExp.Push(fi, lt.symUntil)
		}
	}

	if selected {
		if _, known := r.selectors[from]; !known {
			r.selExp.Push(from, now+hold)
		}
		r.selectors[from] = now + hold
		r.ansn++
	}

	// 2-hop set: symmetric neighbors of a symmetric neighbor.
	if lt.symUntil > now {
		for _, hl := range msg.Links {
			if hl.Neighbor == me {
				continue
			}
			if hl.Code == LinkSym || hl.Code == LinkMPR {
				if r.upsertTwoHop(fi, hl.Neighbor, now+hold, now) {
					material = true
				}
			}
		}
	}
	// Pure lifetime refreshes cannot change recompute output; new links,
	// asym→sym transitions and new/revived 2-hop edges can. Under ETX the
	// carried link qualities move costs on every hello.
	r.noteChange(material || r.cfg.ETX)
}

// upsertTwoHop installs or refreshes the 2-hop tuple (nbr → th), keeping
// the neighbor's edge list sorted by 2-hop NodeID. It reports whether the
// edge is new or was revived from soft expiry (material for recompute).
func (r *Router) upsertTwoHop(fi int32, th netsim.NodeID, until, now sim.Time) bool {
	ti := r.intern(th)
	edges := r.twoHopOf[fi]
	pos := len(edges)
	for j := range edges {
		if edges[j].th == ti {
			material := edges[j].until <= now
			edges[j].until = until
			return material
		}
		if r.ids[edges[j].th] > th {
			pos = j
			break
		}
	}
	edges = append(edges, twoHopEdge{})
	copy(edges[pos+1:], edges[pos:])
	edges[pos] = twoHopEdge{th: ti, until: until}
	r.twoHopOf[fi] = edges
	r.twoHopN++
	r.twoHopExp.Push([2]int32{fi, ti}, until)
	return true
}

func (r *Router) handleTC(p *netsim.Packet, msg *TC, from netsim.NodeID) {
	now := r.now()
	if msg.Origin == r.node.ID() {
		return
	}
	// Only process/forward messages received over a symmetric link
	// (RFC 3626 §3.4 default forwarding algorithm).
	fi, ok := r.idxOf[from]
	if !ok || !r.links[fi].present || r.links[fi].symUntil <= now {
		return
	}
	key := dupKey{origin: msg.Origin, seq: msg.Seq}
	if r.dups.Contains(key) {
		return
	}
	r.recordDup(key, now)
	r.noteChange(r.processTC(msg, now))
	// Forward iff the sender selected us as MPR.
	if until, sel := r.selectors[from]; sel && until > now && p.TTL > 1 {
		fwd := *msg
		r.ctrlPackets++
		r.ctrlBytes += uint64(tcBytes(len(msg.Advertised)) + netsim.IPHeaderBytes)
		fp := p.Clone()
		fp.TTL--
		fp.Payload = &fwd
		r.node.SendFrame(netsim.BroadcastID, fp)
	}
}

// processTC installs the advertised topology tuples (RFC 3626 §9.5) into
// the per-origin adjacency, reporting whether anything material to route
// computation changed (pure refreshes of live edges are not).
func (r *Router) processTC(msg *TC, now sim.Time) bool {
	oi := r.intern(msg.Origin)
	edges := r.topoOf[oi]
	// RFC 3626 §9.5 condition 1: a message older than the recorded state
	// for this originator is discarded outright — a delayed out-of-order
	// TC must not resurrect withdrawn topology edges.
	for _, e := range edges {
		if e.until > now && int16(e.ansn-msg.ANSN) > 0 {
			return false
		}
	}
	material := false
	// Discard tuples with a strictly older ANSN.
	kept := edges[:0]
	for _, e := range edges {
		if int16(msg.ANSN-e.ansn) > 0 {
			r.topoN--
			material = true
			continue
		}
		kept = append(kept, e)
	}
	edges = kept
	for i, dest := range msg.Advertised {
		di := r.intern(dest)
		var lq float64
		if msg.LQs != nil {
			lq = msg.LQs[i]
		}
		found := false
		for j := range edges {
			if edges[j].dest != di {
				continue
			}
			if edges[j].until <= now {
				material = true // revived from soft expiry
			}
			if r.cfg.ETX && edges[j].linkLQ != lq {
				material = true
			}
			edges[j].ansn = msg.ANSN
			edges[j].until = now + r.cfg.TopologyHold
			edges[j].linkLQ = lq
			found = true
			break
		}
		if !found {
			edges = append(edges, topoEdge{dest: di, ansn: msg.ANSN, until: now + r.cfg.TopologyHold, linkLQ: lq})
			r.topoN++
			material = true
		}
	}
	r.topoOf[oi] = edges
	if len(edges) > 0 && !r.topoInHeap[oi] {
		r.topoInHeap[oi] = true
		r.topoExp.Push(oi, minTopoUntil(edges))
	}
	return material
}

func minTopoUntil(edges []topoEdge) sim.Time {
	min := edges[0].until
	for _, e := range edges[1:] {
		if e.until < min {
			min = e.until
		}
	}
	return min
}

// LinkFailure implements netsim.Router: link-layer feedback expires the
// link immediately (RFC 3626 §13 link-layer notification option).
func (r *Router) LinkFailure(next netsim.NodeID, p *netsim.Packet) {
	if p.Kind == netsim.KindData {
		r.node.DropData(p, "olsr:link-failure")
	}
	material := false
	if fi, ok := r.idxOf[next]; ok {
		lt := &r.links[fi]
		if lt.present {
			lt.symUntil, lt.asymUntil, lt.until = 0, 0, 0
			material = true
		}
	}
	r.noteChange(material)
}

// removeLink deletes the link tuple at index fi from the live set.
func (r *Router) removeLink(fi int32) {
	lt := &r.links[fi]
	if !lt.present {
		return
	}
	lt.present = false
	lt.symUntil, lt.asymUntil, lt.until = 0, 0, 0
	pos := r.linkPos[fi]
	last := int32(len(r.linkList) - 1)
	moved := r.linkList[last]
	r.linkList[pos] = moved
	r.linkPos[moved] = pos
	r.linkList = r.linkList[:last]
	r.linkPos[fi] = -1
}

// removeTwoHop deletes the (nbr → th) edge, preserving the sorted order.
func (r *Router) removeTwoHop(fi, ti int32) {
	edges := r.twoHopOf[fi]
	for j := range edges {
		if edges[j].th == ti {
			r.twoHopOf[fi] = append(edges[:j], edges[j+1:]...)
			r.twoHopN--
			return
		}
	}
}

// purge retires expired tuples. The expiry heaps surface exactly the
// entries whose deadlines passed, so the cost is O(expired) — and when
// nothing material expired, no recompute is triggered at all.
func (r *Router) purge() {
	now := r.now()
	material := false

	r.linkExp.Expire(now, func(fi int32) (sim.Time, bool) {
		lt := &r.links[fi]
		return lt.until, lt.present && lt.until > now
	}, func(fi int32) {
		if r.links[fi].present {
			r.removeLink(fi)
			material = true
		}
	})

	r.symExp.Expire(now, func(fi int32) (sim.Time, bool) {
		lt := &r.links[fi]
		return lt.symUntil, lt.present && lt.symUntil > now
	}, func(fi int32) {
		// The symmetric window lapsed (or the link is gone): routes that
		// used this neighbor must be recomputed.
		r.links[fi].inSymHeap = false
		material = true
	})

	r.twoHopExp.Expire(now, func(key [2]int32) (sim.Time, bool) {
		for _, e := range r.twoHopOf[key[0]] {
			if e.th == key[1] {
				return e.until, e.until > now
			}
		}
		return 0, false
	}, func(key [2]int32) {
		r.removeTwoHop(key[0], key[1])
		material = true
	})

	r.selExp.Expire(now, func(id netsim.NodeID) (sim.Time, bool) {
		until, ok := r.selectors[id]
		return until, ok && until > now
	}, func(id netsim.NodeID) {
		if _, ok := r.selectors[id]; ok {
			delete(r.selectors, id)
			r.ansn++
		}
	})

	r.topoExp.Expire(now, func(oi int32) (sim.Time, bool) {
		edges := r.topoOf[oi]
		kept := edges[:0]
		for _, e := range edges {
			if e.until > now {
				kept = append(kept, e)
			} else {
				r.topoN--
				material = true
			}
		}
		r.topoOf[oi] = kept
		if len(kept) == 0 {
			return 0, false
		}
		return minTopoUntil(kept), true
	}, func(oi int32) {
		r.topoInHeap[oi] = false
	})

	r.dups.Expire(now)

	r.purgeHNA(now)
	r.noteChange(material)
}
