// Package olsr implements the Optimized Link State Routing protocol of
// RFC 3626 (§III-B.1 of the paper): HELLO-based link sensing with
// symmetric/asymmetric link states, 2-hop neighborhood tracking, greedy
// Multi-Point Relay (MPR) selection, TC dissemination through MPR
// forwarding, and shortest-path route computation. The olsrd LQ/ETX
// extension described by the paper is available as an option.
package olsr

import (
	"fmt"
	"sort"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// LinkCode describes a link's state as advertised inside a HELLO.
type LinkCode int

// Link codes (RFC 3626 §6.1.1, collapsed to the useful subset).
const (
	LinkSym LinkCode = iota + 1
	LinkAsym
	LinkLost
	LinkMPR // symmetric link to a neighbor we selected as MPR
)

// HelloLink is one link entry inside a HELLO message.
type HelloLink struct {
	Neighbor netsim.NodeID
	Code     LinkCode
	// LQ is the sender's measured hello-arrival ratio on this link,
	// included only when the ETX extension is enabled.
	LQ float64
}

// Hello is the neighborhood-sensing message (RFC 3626 §6).
type Hello struct {
	From  netsim.NodeID
	Links []HelloLink
}

// TC is the topology-control message (RFC 3626 §9).
type TC struct {
	Origin     netsim.NodeID
	ANSN       uint16
	Advertised []netsim.NodeID
	Seq        uint16
	// LQs mirrors Advertised with the originator's link quality to each
	// advertised neighbor (ETX extension only).
	LQs []float64
}

func helloBytes(links int) int { return 16 + 6*links }
func tcBytes(adv int) int      { return 16 + 4*adv }

// Config holds protocol parameters; zero fields take RFC defaults with the
// paper's Table I intervals.
type Config struct {
	HelloInterval sim.Time // default 1 s (Table I)
	TCInterval    sim.Time // default 2 s (Table I)
	NeighborHold  sim.Time // default 3 × HelloInterval
	TopologyHold  sim.Time // default 3 × TCInterval
	DupHold       sim.Time // default 30 s
	// ETX enables the olsrd link-quality extension: routes minimize the sum
	// of ETX(i) = 1/(NI(i)·LQI(i)) instead of hop count.
	ETX bool
	// LQWindow is the sampling window (in hello periods) for packet-arrival
	// estimation; default 10.
	LQWindow int
}

func (c *Config) normalize() {
	if c.HelloInterval == 0 {
		c.HelloInterval = sim.Second
	}
	if c.TCInterval == 0 {
		c.TCInterval = 2 * sim.Second
	}
	if c.NeighborHold == 0 {
		c.NeighborHold = 3 * c.HelloInterval
	}
	if c.TopologyHold == 0 {
		c.TopologyHold = 3 * c.TCInterval
	}
	if c.DupHold == 0 {
		c.DupHold = 30 * sim.Second
	}
	if c.LQWindow == 0 {
		c.LQWindow = 10
	}
}

// linkTuple is the link-set entry of RFC 3626 §4.2.
type linkTuple struct {
	neighbor  netsim.NodeID
	symUntil  sim.Time
	asymUntil sim.Time
	until     sim.Time
	// hellosSeen ring buffer for ETX: 1 if the expected hello arrived.
	lq *lqEstimator
}

type twoHopTuple struct {
	neighbor netsim.NodeID // symmetric 1-hop neighbor
	twoHop   netsim.NodeID
	until    sim.Time
}

type topologyTuple struct {
	dest   netsim.NodeID // advertised neighbor
	last   netsim.NodeID // TC originator
	ansn   uint16
	until  sim.Time
	linkLQ float64 // originator's LQ toward dest (ETX mode)
}

type dupKey struct {
	origin netsim.NodeID
	seq    uint16
}

type routeEntry struct {
	next netsim.NodeID
	hops int
	cost float64
}

// Router is one node's OLSR instance.
type Router struct {
	cfg  Config
	node *netsim.Node

	links     map[netsim.NodeID]*linkTuple
	twoHop    map[[2]netsim.NodeID]*twoHopTuple
	selectors map[netsim.NodeID]sim.Time // nodes that chose us as MPR
	topology  map[[2]netsim.NodeID]*topologyTuple
	dups      map[dupKey]sim.Time
	mprs      map[netsim.NodeID]struct{}
	routes    map[netsim.NodeID]routeEntry

	hnaLocal []NetworkAssoc
	hnaSet   []*hnaTuple

	ansn   uint16
	msgSeq uint16

	helloTicker *sim.Ticker
	tcTicker    *sim.Ticker
	purgeTicker *sim.Ticker
	hnaTicker   *sim.Ticker

	ctrlPackets uint64
	ctrlBytes   uint64
}

var _ netsim.Router = (*Router)(nil)

// New builds an OLSR router for node.
func New(node *netsim.Node, cfg Config) *Router {
	cfg.normalize()
	r := &Router{
		cfg:       cfg,
		node:      node,
		links:     make(map[netsim.NodeID]*linkTuple),
		twoHop:    make(map[[2]netsim.NodeID]*twoHopTuple),
		selectors: make(map[netsim.NodeID]sim.Time),
		topology:  make(map[[2]netsim.NodeID]*topologyTuple),
		dups:      make(map[dupKey]sim.Time),
		mprs:      make(map[netsim.NodeID]struct{}),
		routes:    make(map[netsim.NodeID]routeEntry),
	}
	jitter := func() sim.Time {
		span := int64(cfg.HelloInterval / 5)
		return sim.Time(node.Rand().Int63n(span) - span/2)
	}
	r.helloTicker = sim.NewTicker(node.Kernel(), cfg.HelloInterval, jitter, r.sendHello)
	r.tcTicker = sim.NewTicker(node.Kernel(), cfg.TCInterval, jitter, r.sendTC)
	r.purgeTicker = sim.NewTicker(node.Kernel(), cfg.HelloInterval/2, nil, r.purge)
	return r
}

// Name implements netsim.Router.
func (r *Router) Name() string { return "olsr" }

// Start implements netsim.Router.
func (r *Router) Start() {
	r.helloTicker.StartNow()
	r.tcTicker.Start()
	r.purgeTicker.Start()
}

// Stop implements netsim.Router.
func (r *Router) Stop() {
	r.helloTicker.Stop()
	r.tcTicker.Stop()
	r.purgeTicker.Stop()
	if r.hnaTicker != nil {
		r.hnaTicker.Stop()
	}
}

// ControlTraffic implements netsim.Router.
func (r *Router) ControlTraffic() (uint64, uint64) { return r.ctrlPackets, r.ctrlBytes }

// MPRSet returns the current multipoint relays (for tests and analysis).
func (r *Router) MPRSet() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(r.mprs))
	for id := range r.mprs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Route reports the computed next hop toward dst.
func (r *Router) Route(dst netsim.NodeID) (next netsim.NodeID, hops int, ok bool) {
	e, found := r.routes[dst]
	if !found {
		return 0, 0, false
	}
	return e.next, e.hops, true
}

func (r *Router) now() sim.Time { return r.node.Kernel().Now() }

func (r *Router) sendControl(ttl, size int, msg any) {
	p := &netsim.Packet{
		Kind:      netsim.KindControl,
		Src:       r.node.ID(),
		Dst:       netsim.BroadcastID,
		Port:      netsim.PortRouting,
		TTL:       ttl,
		Size:      size + netsim.IPHeaderBytes,
		Payload:   msg,
		CreatedAt: r.now(),
	}
	r.ctrlPackets++
	r.ctrlBytes += uint64(p.Size)
	r.node.SendFrame(netsim.BroadcastID, p)
}

// symNeighbors lists neighbors with currently symmetric links.
func (r *Router) symNeighbors() []netsim.NodeID {
	now := r.now()
	var out []netsim.NodeID
	for id, lt := range r.links {
		if lt.symUntil > now {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r *Router) sendHello() {
	now := r.now()
	var links []HelloLink
	for id, lt := range r.links {
		if lt.until <= now {
			continue
		}
		var code LinkCode
		switch {
		case lt.symUntil > now:
			if _, isMPR := r.mprs[id]; isMPR {
				code = LinkMPR
			} else {
				code = LinkSym
			}
		case lt.asymUntil > now:
			code = LinkAsym
		default:
			code = LinkLost
		}
		hl := HelloLink{Neighbor: id, Code: code}
		if r.cfg.ETX && lt.lq != nil {
			hl.LQ = lt.lq.ratio()
		}
		links = append(links, hl)
	}
	sort.Slice(links, func(i, j int) bool { return links[i].Neighbor < links[j].Neighbor })
	r.sendControl(1, helloBytes(len(links)), &Hello{From: r.node.ID(), Links: links})
	// Advance every neighbor's expected-hello window.
	if r.cfg.ETX {
		for _, lt := range r.links {
			if lt.lq != nil {
				lt.lq.tick()
			}
		}
	}
}

func (r *Router) sendTC() {
	now := r.now()
	var adv []netsim.NodeID
	for id, until := range r.selectors {
		if until > now {
			adv = append(adv, id)
		}
	}
	if len(adv) == 0 {
		return // RFC 3626 §9.3: TC only with a non-empty selector set
	}
	sort.Slice(adv, func(i, j int) bool { return adv[i] < adv[j] })
	r.msgSeq++
	msg := &TC{Origin: r.node.ID(), ANSN: r.ansn, Advertised: adv, Seq: r.msgSeq}
	if r.cfg.ETX {
		msg.LQs = make([]float64, len(adv))
		for i, id := range adv {
			if lt := r.links[id]; lt != nil && lt.lq != nil {
				msg.LQs[i] = lt.lq.ratio()
			}
		}
	}
	r.dups[dupKey{origin: msg.Origin, seq: msg.Seq}] = now + r.cfg.DupHold
	r.sendControl(netsim.DefaultTTL, tcBytes(len(adv)), msg)
}

// Receive implements netsim.Router.
func (r *Router) Receive(p *netsim.Packet, from netsim.NodeID) {
	if p.Kind == netsim.KindControl {
		switch msg := p.Payload.(type) {
		case *Hello:
			r.handleHello(msg, from)
		case *TC:
			r.handleTC(p, msg, from)
		case *HNA:
			r.handleHNA(p, msg, from)
		default:
			panic(fmt.Sprintf("olsr: unexpected control payload %T", p.Payload))
		}
		return
	}
	r.forwardData(p)
}

// Origin implements netsim.Router.
func (r *Router) Origin(p *netsim.Packet) {
	next, ok := r.nextHopFor(p.Dst)
	if !ok {
		// Proactive protocol: no buffering, packets without a current route
		// are lost — a behaviour the paper's Fig. 9/11 comparison exposes.
		r.node.DropData(p, "olsr:no-route")
		return
	}
	r.node.SendFrame(next, p)
}

// nextHopFor resolves a destination through the routing table, falling
// back to the HNA association set for external destinations.
func (r *Router) nextHopFor(dst netsim.NodeID) (netsim.NodeID, bool) {
	if e, ok := r.routes[dst]; ok {
		return e.next, true
	}
	if gw, ok := r.GatewayFor(dst); ok {
		if e, ok := r.routes[gw]; ok {
			return e.next, true
		}
	}
	return 0, false
}

func (r *Router) forwardData(p *netsim.Packet) {
	if r.localAssoc(p.Dst) {
		// We are the gateway for this external destination: the packet has
		// reached the MANET-side endpoint.
		r.node.DeliverLocal(p)
		return
	}
	p.TTL--
	if p.TTL <= 0 {
		r.node.DropData(p, "olsr:ttl")
		return
	}
	next, ok := r.nextHopFor(p.Dst)
	if !ok {
		r.node.DropData(p, "olsr:no-forward-route")
		return
	}
	r.node.NoteForward(p)
	r.node.SendFrame(next, p)
}

func (r *Router) handleHello(msg *Hello, from netsim.NodeID) {
	now := r.now()
	lt := r.links[from]
	if lt == nil {
		lt = &linkTuple{neighbor: from}
		if r.cfg.ETX {
			lt.lq = newLQEstimator(r.cfg.LQWindow)
		}
		r.links[from] = lt
	}
	lt.asymUntil = now + r.cfg.NeighborHold
	lt.until = now + r.cfg.NeighborHold
	if lt.lq != nil {
		lt.lq.heard()
	}

	me := r.node.ID()
	meListed := false
	selected := false
	for _, hl := range msg.Links {
		if hl.Neighbor != me {
			continue
		}
		meListed = true
		if hl.Code == LinkMPR {
			selected = true
		}
		if hl.Code != LinkLost {
			// The neighbor hears us: the link is symmetric.
			lt.symUntil = now + r.cfg.NeighborHold
		}
	}
	_ = meListed

	if selected {
		r.selectors[from] = now + r.cfg.NeighborHold
		r.ansn++
	}

	// 2-hop set: symmetric neighbors of a symmetric neighbor.
	if lt.symUntil > now {
		for _, hl := range msg.Links {
			if hl.Neighbor == me {
				continue
			}
			if hl.Code == LinkSym || hl.Code == LinkMPR {
				key := [2]netsim.NodeID{from, hl.Neighbor}
				tuple := r.twoHop[key]
				if tuple == nil {
					tuple = &twoHopTuple{neighbor: from, twoHop: hl.Neighbor}
					r.twoHop[key] = tuple
				}
				tuple.until = now + r.cfg.NeighborHold
			}
		}
	}
	r.recompute()
}

func (r *Router) handleTC(p *netsim.Packet, msg *TC, from netsim.NodeID) {
	now := r.now()
	me := r.node.ID()
	if msg.Origin == me {
		return
	}
	// Only process/forward messages received over a symmetric link
	// (RFC 3626 §3.4 default forwarding algorithm).
	lt := r.links[from]
	if lt == nil || lt.symUntil <= now {
		return
	}
	key := dupKey{origin: msg.Origin, seq: msg.Seq}
	if _, dup := r.dups[key]; !dup {
		r.dups[key] = now + r.cfg.DupHold
		r.processTC(msg, now)
		// Forward iff the sender selected us as MPR.
		if until, sel := r.selectors[from]; sel && until > now && p.TTL > 1 {
			fwd := *msg
			r.ctrlPackets++
			r.ctrlBytes += uint64(tcBytes(len(msg.Advertised)) + netsim.IPHeaderBytes)
			fp := p.Clone()
			fp.TTL--
			fp.Payload = &fwd
			r.node.SendFrame(netsim.BroadcastID, fp)
		}
	}
	r.recompute()
}

func (r *Router) processTC(msg *TC, now sim.Time) {
	// RFC 3626 §9.5: discard older ANSN state, then install tuples.
	for key, t := range r.topology {
		if t.last == msg.Origin && int16(msg.ANSN-t.ansn) > 0 {
			delete(r.topology, key)
		}
	}
	for i, dest := range msg.Advertised {
		key := [2]netsim.NodeID{msg.Origin, dest}
		t := r.topology[key]
		if t == nil {
			t = &topologyTuple{dest: dest, last: msg.Origin}
			r.topology[key] = t
		}
		t.ansn = msg.ANSN
		t.until = now + r.cfg.TopologyHold
		if msg.LQs != nil {
			t.linkLQ = msg.LQs[i]
		}
	}
}

// LinkFailure implements netsim.Router: link-layer feedback expires the
// link immediately (RFC 3626 §13 link-layer notification option).
func (r *Router) LinkFailure(next netsim.NodeID, p *netsim.Packet) {
	if p.Kind == netsim.KindData {
		r.node.DropData(p, "olsr:link-failure")
	}
	if lt := r.links[next]; lt != nil {
		lt.symUntil = 0
		lt.asymUntil = 0
		lt.until = 0
	}
	r.recompute()
}

func (r *Router) purge() {
	now := r.now()
	for id, lt := range r.links {
		if lt.until <= now {
			delete(r.links, id)
		}
	}
	for key, t := range r.twoHop {
		if t.until <= now {
			delete(r.twoHop, key)
		}
	}
	for id, until := range r.selectors {
		if until <= now {
			delete(r.selectors, id)
			r.ansn++
		}
	}
	for key, t := range r.topology {
		if t.until <= now {
			delete(r.topology, key)
		}
	}
	for key, until := range r.dups {
		if until <= now {
			delete(r.dups, key)
		}
	}
	r.purgeHNA(now)
	r.recompute()
}
