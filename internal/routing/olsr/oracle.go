package olsr

import (
	"sort"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// This file retains the original map-based MPR selection and routing-table
// computation as the differential-testing oracle for the dense kernels
// (enabled with Config.OracleRecompute). It allocates ~8 maps plus sorts
// per recompute — the pre-optimization cost profile that the control-plane
// benchmark measures against — and must stay semantically identical to
// dense.go: TestDenseMatchesOracle asserts bit-identical routes, MPR sets
// and wire contents across randomized topologies.
//
// Two deliberate deviations from the seed implementation, shared with the
// dense path: route replacement uses the total (cost, hops, next) order of
// lessRoute instead of cost alone (making equal-cost tie-breaks
// deterministic rather than map-iteration-dependent), and the 2-hop pass
// visits tuples in sorted (neighbor, 2-hop) order for the same reason.

func (r *Router) recomputeOracle() {
	now := r.now()
	epoch := r.nextEpoch()
	r.oracleSelectMPRs(now, epoch)
	r.oracleComputeRoutes(now, epoch)
}

// oracleSelectMPRs runs the greedy heuristic of RFC 3626 §8.3.1: first
// pick the only-reachability neighbors (sole providers of some 2-hop
// node), then repeatedly pick the neighbor covering the most uncovered
// 2-hop nodes.
func (r *Router) oracleSelectMPRs(now sim.Time, epoch uint64) {
	me := r.node.ID()

	sym := make(map[netsim.NodeID]bool)
	for _, n := range r.symNeighbors() {
		sym[n] = true
	}

	// coverage[n] = set of strict 2-hop nodes reachable through neighbor n.
	coverage := make(map[netsim.NodeID]map[netsim.NodeID]bool)
	uncovered := make(map[netsim.NodeID]bool)
	r.eachTwoHop(func(nbr, th netsim.NodeID, until sim.Time) {
		if until <= now || !sym[nbr] {
			return
		}
		// Strict 2-hop: not us, not itself a symmetric neighbor.
		if th == me || sym[th] {
			return
		}
		if coverage[nbr] == nil {
			coverage[nbr] = make(map[netsim.NodeID]bool)
		}
		coverage[nbr][th] = true
		uncovered[th] = true
	})

	mprs := make(map[netsim.NodeID]struct{})

	// Pass 1: neighbors that are the sole route to some 2-hop node.
	providers := make(map[netsim.NodeID][]netsim.NodeID)
	for n, covers := range coverage {
		for th := range covers {
			providers[th] = append(providers[th], n)
		}
	}
	for _, ps := range providers {
		if len(ps) == 1 {
			mprs[ps[0]] = struct{}{}
		}
	}
	for n := range mprs {
		for th := range coverage[n] {
			delete(uncovered, th)
		}
	}

	// Pass 2: greedy max-coverage until everything is covered.
	for len(uncovered) > 0 {
		best := netsim.NodeID(-1)
		bestCount := 0
		// Deterministic iteration order for reproducibility.
		candidates := make([]netsim.NodeID, 0, len(coverage))
		for n := range coverage {
			candidates = append(candidates, n)
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
		for _, n := range candidates {
			if _, already := mprs[n]; already {
				continue
			}
			count := 0
			for th := range coverage[n] {
				if uncovered[th] {
					count++
				}
			}
			if count > bestCount {
				bestCount = count
				best = n
			}
		}
		if best < 0 {
			break // remaining 2-hop nodes are unreachable; sets will expire
		}
		mprs[best] = struct{}{}
		for th := range coverage[best] {
			delete(uncovered, th)
		}
	}

	// Publish through the shared epoch-stamped representation.
	r.mprEpoch = epoch
	r.mprList = r.mprList[:0]
	for id := range mprs {
		r.mprStamp[r.idxOf[id]] = epoch
		r.mprList = append(r.mprList, id)
	}
	sort.Slice(r.mprList, func(i, j int) bool { return r.mprList[i] < r.mprList[j] })
}

// oracleComputeRoutes rebuilds the routing table (RFC 3626 §10):
// symmetric neighbors at distance 1, 2-hop tuples at distance 2, then
// topology-set edges relaxed until no route changes. In ETX mode edge
// weights are ETX = 1/(NI·LQI) and the relaxation minimizes total cost
// instead of hops.
func (r *Router) oracleComputeRoutes(now sim.Time, epoch uint64) {
	me := r.node.ID()
	routes := make(map[netsim.NodeID]routeEntry)

	for _, fi := range r.linkList {
		lt := &r.links[fi]
		if lt.symUntil > now {
			routes[lt.neighbor] = routeEntry{next: lt.neighbor, hops: 1, cost: r.linkCost(lt)}
		}
	}

	// 2-hop tuples in sorted (neighbor, 2-hop) order; this single pass is
	// order-dependent (a base may stop being distance 1 mid-pass in ETX
	// mode), so the order is part of the contract with the dense kernel.
	type thTuple struct {
		nbr, th netsim.NodeID
		until   sim.Time
	}
	var tuples []thTuple
	r.eachTwoHop(func(nbr, th netsim.NodeID, until sim.Time) {
		tuples = append(tuples, thTuple{nbr: nbr, th: th, until: until})
	})
	sort.Slice(tuples, func(i, j int) bool {
		if tuples[i].nbr != tuples[j].nbr {
			return tuples[i].nbr < tuples[j].nbr
		}
		return tuples[i].th < tuples[j].th
	})
	for _, t := range tuples {
		if t.until <= now || t.th == me {
			continue
		}
		base, ok := routes[t.nbr]
		if !ok || base.hops != 1 {
			continue
		}
		cand := routeEntry{next: t.nbr, hops: 2, cost: base.cost + 1}
		if cur, exists := routes[t.th]; !exists || lessRoute(cand, cur) {
			routes[t.th] = cand
		}
	}

	// Relax topology edges (origin → dest) until fixpoint. The lessRoute
	// total order makes the fixpoint unique, so iteration order is
	// irrelevant here.
	for changed := true; changed; {
		changed = false
		for oi, edges := range r.topoOf {
			origin := r.ids[oi]
			for _, e := range edges {
				if e.until <= now || r.ids[e.dest] == me {
					continue
				}
				via, ok := routes[origin]
				if !ok {
					continue
				}
				w := 1.0
				if r.cfg.ETX && e.linkLQ > 0 {
					w = etxCost(e.linkLQ, e.linkLQ)
				}
				cand := routeEntry{next: via.next, hops: via.hops + 1, cost: via.cost + w}
				dest := r.ids[e.dest]
				if cur, exists := routes[dest]; !exists || lessRoute(cand, cur) {
					routes[dest] = cand
					changed = true
				}
			}
		}
	}

	// Publish through the shared epoch-stamped representation. Every route
	// destination is interned (it came from a link, 2-hop or topology
	// tuple), so the index lookup cannot miss.
	r.routeEpoch = epoch
	for id, e := range routes {
		i := r.idxOf[id]
		r.routeOf[i] = e
		r.routeStamp[i] = epoch
	}
}
