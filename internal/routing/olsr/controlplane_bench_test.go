package olsr

import (
	"fmt"
	"testing"

	"cavenet/internal/geometry"
	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// seedControlState installs a deterministic synthetic VANET neighborhood on
// the router: `deg` symmetric 1-hop neighbors each reporting a slice of a
// ring (the 2-hop set), and a topology ring over all n nodes with 8 edges
// per origin — the shape of a converged OLSR table at highway density.
func seedControlState(w *netsim.World, r *Router, n int) {
	const deg = 16
	w.Kernel.Schedule(w.Kernel.Now(), func() {
		for i := 1; i <= deg; i++ {
			links := []HelloLink{{Neighbor: 0, Code: LinkSym}}
			for d := 1; d <= 4; d++ {
				links = append(links, HelloLink{Neighbor: netsim.NodeID((i+d-1)%n + 1), Code: LinkSym, LQ: 0.9})
			}
			r.handleHello(&Hello{From: netsim.NodeID(i), Links: links}, netsim.NodeID(i))
		}
		seq := uint16(0)
		for i := 1; i <= n; i++ {
			adv := make([]netsim.NodeID, 0, 8)
			for d := 1; d <= 4; d++ {
				adv = append(adv, netsim.NodeID((i+d-1)%n+1), netsim.NodeID((i-d-1+n)%n+1))
			}
			seq++
			msg := &TC{Origin: netsim.NodeID(i), ANSN: 1, Advertised: adv, Seq: seq}
			r.handleTC(&netsim.Packet{Kind: netsim.KindControl, TTL: 1}, msg, 1)
		}
	})
	w.Kernel.Run()
}

// BenchmarkOLSRControlPlane measures one full MPR+route recompute on a
// converged control table — the operation the seed implementation ran once
// per received HELLO/TC. "dense" is the production path (zero steady-state
// allocations); "oracle" is the retained map-based reference, which is
// also the pre-optimization cost profile. See PERF.md for the table.
func BenchmarkOLSRControlPlane(b *testing.B) {
	for _, n := range []int{100, 1000} {
		for _, mode := range []string{"dense", "oracle"} {
			b.Run(fmt.Sprintf("%s/N=%d", mode, n), func(b *testing.B) {
				w, r := newBareRouter(b, Config{OracleRecompute: mode == "oracle"})
				seedControlState(w, r, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.dirty = true
					r.recomputeNow()
				}
			})
		}
	}
}

// BenchmarkOLSRPurge measures the lazy purge tick on a converged table
// with nothing expired — the steady-state cost, O(expired) = O(1) here.
func BenchmarkOLSRPurge(b *testing.B) {
	w, r := newBareRouter(b, Config{})
	seedControlState(w, r, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.purge()
	}
}

// BenchmarkOLSRWorld runs a full 200-node static-grid world — HELLO/TC
// emission, MPR forwarding, recomputes, purges — for five simulated
// seconds per iteration. Modes: "dense" is the production control plane
// (coalesced + change-filtered triggers, dense kernels); "oracle" keeps
// the new triggers but the map-based kernels; "seed" reconstructs the
// pre-optimization behavior (map-based kernels, one recompute per received
// message and per purge tick). Iteration-based benchtime only.
func BenchmarkOLSRWorld(b *testing.B) {
	const n = 200
	positions := make([]geometry.Vec2, n)
	for i := range positions {
		positions[i] = geometry.Vec2{X: float64(i%20) * 180, Y: float64(i/20) * 180}
	}
	for _, mode := range []string{"dense", "oracle", "seed"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w, err := netsim.NewWorld(netsim.WorldConfig{
					Nodes: n, Seed: 1, Static: positions,
				}, func(node *netsim.Node) netsim.Router {
					r := New(node, Config{OracleRecompute: mode != "dense"})
					r.eagerRecompute = mode == "seed"
					return r
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				w.Run(5 * sim.Second)
			}
		})
	}
}
