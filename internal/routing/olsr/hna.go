package olsr

import (
	"sort"

	"cavenet/internal/netsim"
	"cavenet/internal/sim"
)

// This file implements HNA (Host and Network Association) messages, which
// the paper's §III-B.1 describes: "HNA messages are used by OLSR to
// disseminate network route advertisements in the same way TC messages
// advertise host routes." A gateway node advertises ranges of external
// destinations (e.g. roadside-infrastructure addresses outside the MANET);
// other nodes route packets for those destinations toward the gateway —
// the car-to-hotspot scenario of the paper's §II.

// HNA is the network-association message (RFC 3626 §12).
type HNA struct {
	Origin   netsim.NodeID
	Networks []NetworkAssoc
	Seq      uint16
}

// NetworkAssoc is one advertised external range [From, To] of destination
// IDs (the analogue of a prefix in this integer-addressed simulator).
type NetworkAssoc struct {
	From, To netsim.NodeID
}

// Contains reports whether dst falls in the advertised range.
func (a NetworkAssoc) Contains(dst netsim.NodeID) bool {
	return dst >= a.From && dst <= a.To
}

func hnaBytes(n int) int { return 16 + 8*n }

// hnaTuple is the association-set entry (RFC 3626 §12.5).
type hnaTuple struct {
	gateway netsim.NodeID
	assoc   NetworkAssoc
	until   sim.Time
}

// AdvertiseNetwork makes this node a gateway for the given external range:
// it starts emitting HNA messages alongside its TCs, and delivers packets
// addressed inside the range locally (it is the MANET-side endpoint).
func (r *Router) AdvertiseNetwork(assoc NetworkAssoc) {
	r.hnaLocal = append(r.hnaLocal, assoc)
	if r.hnaTicker == nil {
		jitter := func() sim.Time {
			span := int64(r.cfg.TCInterval / 5)
			return sim.Time(r.node.Rand().Int63n(span) - span/2)
		}
		r.hnaTicker = sim.NewTicker(r.node.Kernel(), r.cfg.TCInterval, jitter, r.sendHNA)
		r.hnaTicker.Start()
	}
}

// GatewayFor reports the chosen gateway for an external destination, if the
// association set knows one.
func (r *Router) GatewayFor(dst netsim.NodeID) (netsim.NodeID, bool) {
	r.flush()
	now := r.now()
	best := netsim.NodeID(-1)
	bestCost := 0.0
	for _, t := range r.hnaSet {
		if t.until <= now || !t.assoc.Contains(dst) {
			continue
		}
		e, ok := r.routeFor(t.gateway)
		if !ok {
			continue
		}
		if best < 0 || e.cost < bestCost {
			best = t.gateway
			bestCost = e.cost
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func (r *Router) localAssoc(dst netsim.NodeID) bool {
	for _, a := range r.hnaLocal {
		if a.Contains(dst) {
			return true
		}
	}
	return false
}

func (r *Router) sendHNA() {
	if len(r.hnaLocal) == 0 {
		return
	}
	nets := append([]NetworkAssoc(nil), r.hnaLocal...)
	sort.Slice(nets, func(i, j int) bool { return nets[i].From < nets[j].From })
	r.msgSeq++
	msg := &HNA{Origin: r.node.ID(), Networks: nets, Seq: r.msgSeq}
	r.recordDup(dupKey{origin: msg.Origin, seq: msg.Seq}, r.now())
	r.sendControl(netsim.DefaultTTL, hnaBytes(len(nets)), msg)
}

func (r *Router) handleHNA(p *netsim.Packet, msg *HNA, from netsim.NodeID) {
	now := r.now()
	if msg.Origin == r.node.ID() {
		return
	}
	fi, ok := r.idxOf[from]
	if !ok || !r.links[fi].present || r.links[fi].symUntil <= now {
		return
	}
	key := dupKey{origin: msg.Origin, seq: msg.Seq}
	if !r.dups.Contains(key) {
		r.recordDup(key, now)
		for _, assoc := range msg.Networks {
			r.installHNA(msg.Origin, assoc, now)
		}
		// HNA floods with the same MPR forwarding rule as TC.
		if until, sel := r.selectors[from]; sel && until > now && p.TTL > 1 {
			fwd := *msg
			r.ctrlPackets++
			r.ctrlBytes += uint64(hnaBytes(len(msg.Networks)) + netsim.IPHeaderBytes)
			fp := p.Clone()
			fp.TTL--
			fp.Payload = &fwd
			r.node.SendFrame(netsim.BroadcastID, fp)
		}
	}
}

func (r *Router) installHNA(gw netsim.NodeID, assoc NetworkAssoc, now sim.Time) {
	for _, t := range r.hnaSet {
		if t.gateway == gw && t.assoc == assoc {
			t.until = now + r.cfg.TopologyHold
			return
		}
	}
	r.hnaSet = append(r.hnaSet, &hnaTuple{
		gateway: gw,
		assoc:   assoc,
		until:   now + r.cfg.TopologyHold,
	})
}

func (r *Router) purgeHNA(now sim.Time) {
	kept := r.hnaSet[:0]
	for _, t := range r.hnaSet {
		if t.until > now {
			kept = append(kept, t)
		}
	}
	r.hnaSet = kept
}
