package olsr

// Shared pieces of the two recompute implementations (dense.go holds the
// production kernels, oracle.go the retained map-based reference): the
// link-cost model, the deterministic route tie-break, and the ETX
// link-quality estimator.

// linkCost is the outgoing edge weight of a 1-hop link: 1 in hop-count
// mode, ETX otherwise. Weights are always ≥ 1, which the Dijkstra kernel's
// finality argument relies on.
func (r *Router) linkCost(lt *linkTuple) float64 {
	if !r.cfg.ETX || lt.lq == nil {
		return 1
	}
	return etxCost(lt.lq.ratio(), lt.lq.ratio())
}

// lessRoute orders route candidates by (cost, hops, next hop): the
// deterministic tie-break shared by the dense kernels and the oracle. A
// candidate replaces the incumbent only when strictly less, so both the
// oracle's iterate-to-fixpoint relaxation and the dense Dijkstra converge
// to the same unique minimal label per destination.
func lessRoute(a, b routeEntry) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	return a.next < b.next
}

// etxCost computes ETX(i) = 1/(NI·LQI), clamped to avoid division blowups
// on links that have not yet been measured.
func etxCost(ni, lqi float64) float64 {
	const floor = 0.05
	if ni < floor {
		ni = floor
	}
	if lqi < floor {
		lqi = floor
	}
	return 1 / (ni * lqi)
}

// lqEstimator measures the hello-arrival ratio over a sliding window of
// expected hello periods (the NI(i) of the paper's ETX description). The
// window is a fixed ring buffer with a running arrival count, so closing a
// period and reading the ratio are both O(1) — the previous implementation
// shifted a slice per tick and rescanned the window per ratio query.
type lqEstimator struct {
	ring    []bool // one slot per closed period; true = hello arrived
	head    int    // next slot to overwrite
	filled  int    // closed periods recorded, ≤ len(ring)
	hits    int    // arrivals among the recorded periods
	arrived bool   // hello seen in the currently open period
}

func newLQEstimator(window int) *lqEstimator {
	return &lqEstimator{ring: make([]bool, window)}
}

// reset clears the history (used when a purged link reappears and its
// estimator object is recycled).
func (e *lqEstimator) reset() {
	e.head, e.filled, e.hits, e.arrived = 0, 0, 0, false
}

// heard records a hello arrival in the current period.
func (e *lqEstimator) heard() { e.arrived = true }

// tick closes the current period (called once per local hello emission,
// which has the right cadence since both ends use the same interval).
func (e *lqEstimator) tick() {
	if e.filled == len(e.ring) {
		if e.ring[e.head] {
			e.hits--
		}
	} else {
		e.filled++
	}
	e.ring[e.head] = e.arrived
	if e.arrived {
		e.hits++
	}
	e.head++
	if e.head == len(e.ring) {
		e.head = 0
	}
	e.arrived = false
}

// ratio reports arrivals/expected over the window; optimistic 1.0 before
// any period closes.
func (e *lqEstimator) ratio() float64 {
	if e.filled == 0 {
		return 1
	}
	return float64(e.hits) / float64(e.filled)
}
