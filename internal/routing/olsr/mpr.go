package olsr

import (
	"sort"

	"cavenet/internal/netsim"
)

// recompute re-derives the MPR set and the routing table from the current
// link, 2-hop and topology sets. It runs after every message and purge;
// with tens of nodes both computations are microseconds.
func (r *Router) recompute() {
	r.selectMPRs()
	r.computeRoutes()
}

// selectMPRs runs the greedy heuristic of RFC 3626 §8.3.1: first pick the
// only-reachability neighbors (sole providers of some 2-hop node), then
// repeatedly pick the neighbor covering the most uncovered 2-hop nodes.
func (r *Router) selectMPRs() {
	now := r.now()
	me := r.node.ID()

	sym := make(map[netsim.NodeID]bool)
	for _, n := range r.symNeighbors() {
		sym[n] = true
	}

	// coverage[n] = set of strict 2-hop nodes reachable through neighbor n.
	coverage := make(map[netsim.NodeID]map[netsim.NodeID]bool)
	uncovered := make(map[netsim.NodeID]bool)
	for _, t := range r.twoHop {
		if t.until <= now || !sym[t.neighbor] {
			continue
		}
		// Strict 2-hop: not us, not itself a symmetric neighbor.
		if t.twoHop == me || sym[t.twoHop] {
			continue
		}
		if coverage[t.neighbor] == nil {
			coverage[t.neighbor] = make(map[netsim.NodeID]bool)
		}
		coverage[t.neighbor][t.twoHop] = true
		uncovered[t.twoHop] = true
	}

	mprs := make(map[netsim.NodeID]struct{})

	// Pass 1: neighbors that are the sole route to some 2-hop node.
	providers := make(map[netsim.NodeID][]netsim.NodeID)
	for n, covers := range coverage {
		for th := range covers {
			providers[th] = append(providers[th], n)
		}
	}
	for th, ps := range providers {
		if len(ps) == 1 {
			mprs[ps[0]] = struct{}{}
			_ = th
		}
	}
	for n := range mprs {
		for th := range coverage[n] {
			delete(uncovered, th)
		}
	}

	// Pass 2: greedy max-coverage until everything is covered.
	for len(uncovered) > 0 {
		best := netsim.NodeID(-1)
		bestCount := 0
		// Deterministic iteration order for reproducibility.
		candidates := make([]netsim.NodeID, 0, len(coverage))
		for n := range coverage {
			candidates = append(candidates, n)
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
		for _, n := range candidates {
			if _, already := mprs[n]; already {
				continue
			}
			count := 0
			for th := range coverage[n] {
				if uncovered[th] {
					count++
				}
			}
			if count > bestCount {
				bestCount = count
				best = n
			}
		}
		if best < 0 {
			break // remaining 2-hop nodes are unreachable; sets will expire
		}
		mprs[best] = struct{}{}
		for th := range coverage[best] {
			delete(uncovered, th)
		}
	}

	r.mprs = mprs
}

// computeRoutes rebuilds the routing table (RFC 3626 §10): symmetric
// neighbors at distance 1, 2-hop tuples at distance 2, then topology-set
// edges relaxed until no route changes. In ETX mode edge weights are
// ETX = 1/(NI·LQI) and the relaxation minimizes total cost instead of hops.
func (r *Router) computeRoutes() {
	now := r.now()
	me := r.node.ID()
	routes := make(map[netsim.NodeID]routeEntry)

	linkCost := func(lt *linkTuple) float64 {
		if !r.cfg.ETX || lt == nil || lt.lq == nil {
			return 1
		}
		return etxCost(lt.lq.ratio(), lt.lq.ratio())
	}

	for id, lt := range r.links {
		if lt.symUntil > now {
			routes[id] = routeEntry{next: id, hops: 1, cost: linkCost(lt)}
		}
	}
	for _, t := range r.twoHop {
		if t.until <= now || t.twoHop == me {
			continue
		}
		base, ok := routes[t.neighbor]
		if !ok || base.hops != 1 {
			continue
		}
		cost := base.cost + 1 // neighbor→2hop quality unknown; count one hop
		if cur, exists := routes[t.twoHop]; !exists || cost < cur.cost {
			routes[t.twoHop] = routeEntry{next: t.neighbor, hops: 2, cost: cost}
		}
	}
	// Relax topology edges (last → dest) until fixpoint.
	for changed := true; changed; {
		changed = false
		for _, t := range r.topology {
			if t.until <= now || t.dest == me {
				continue
			}
			via, ok := routes[t.last]
			if !ok {
				continue
			}
			w := 1.0
			if r.cfg.ETX && t.linkLQ > 0 {
				w = etxCost(t.linkLQ, t.linkLQ)
			}
			cost := via.cost + w
			hops := via.hops + 1
			if cur, exists := routes[t.dest]; !exists || cost < cur.cost {
				routes[t.dest] = routeEntry{next: via.next, hops: hops, cost: cost}
				changed = true
			}
		}
	}
	r.routes = routes
}

// etxCost computes ETX(i) = 1/(NI·LQI), clamped to avoid division blowups
// on links that have not yet been measured.
func etxCost(ni, lqi float64) float64 {
	const floor = 0.05
	if ni < floor {
		ni = floor
	}
	if lqi < floor {
		lqi = floor
	}
	return 1 / (ni * lqi)
}

// lqEstimator measures the hello-arrival ratio over a sliding window of
// expected hello periods (the NI(i) of the paper's ETX description).
type lqEstimator struct {
	window  int
	history []bool // true = hello arrived in that period
	arrived bool
}

func newLQEstimator(window int) *lqEstimator {
	return &lqEstimator{window: window}
}

// heard records a hello arrival in the current period.
func (e *lqEstimator) heard() { e.arrived = true }

// tick closes the current period (called once per local hello emission,
// which has the right cadence since both ends use the same interval).
func (e *lqEstimator) tick() {
	e.history = append(e.history, e.arrived)
	if len(e.history) > e.window {
		e.history = e.history[1:]
	}
	e.arrived = false
}

// ratio reports arrivals/expected over the window; optimistic 1.0 before
// any period closes.
func (e *lqEstimator) ratio() float64 {
	if len(e.history) == 0 {
		return 1
	}
	n := 0
	for _, ok := range e.history {
		if ok {
			n++
		}
	}
	return float64(n) / float64(len(e.history))
}
