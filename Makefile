# Developer entry points. `make ci` is what the GitHub Actions workflow
# runs; keep the two in sync.

GO ?= go

.PHONY: build vet test bench-smoke bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One iteration of the broadcast scaling bench: catches gross perf
# regressions (e.g. the culling silently disabled) without the minutes-long
# full table from PERF.md.
bench-smoke:
	$(GO) test ./internal/phy/ -bench ChannelBroadcast -benchtime=1x -benchmem -run XXX

# Full benchmark tables; see PERF.md for interpretation.
bench:
	$(GO) test ./internal/phy/ -bench 'ChannelBroadcast|MobilityTick' -benchmem -benchtime=2000x -run XXX
	$(GO) test ./internal/netsim/ -bench 'Connectivity|Components' -benchmem -benchtime=20x -run XXX
	$(GO) test ./internal/sim/ -bench . -benchmem -run XXX

ci: build vet test bench-smoke
