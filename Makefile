# Developer entry points. `make ci` is what the GitHub Actions workflow
# runs; keep the two in sync.

GO ?= go

.PHONY: build vet fmt-check staticcheck test race sweep-smoke scenario-smoke churn-smoke serve-smoke fuzz-smoke bench-smoke bench-routing-smoke bench-mobility-smoke bench-kernel-smoke bench-dataplane-smoke bench-kernel bench-routing bench-dataplane bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt cleanliness: fail (and name the files) if anything is not
# canonically formatted. gofmt -l prints nothing on a clean tree.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# staticcheck when available: the tool is not vendored, so environments
# without it (fresh containers) skip the target instead of failing ci.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

# Race-detector pass over the parallel experiment engine and everything
# that schedules work on it; mirrors the ci.yml race job. The scenario
# registry sweeps on the same engine, so it rides along (-short trims its
# 20-seed property suite to keep the race pass quick); its catalogue ×
# AllProtocols matrix covers GPSR and the urban street-grid workloads.
race:
	$(GO) test -race ./internal/exp/ ./internal/stats/ ./internal/rng/ ./internal/core/
	$(GO) test -race -short ./internal/scenario/...

# Tiny end-to-end grid through the sweep subcommand: catches CLI wiring
# and engine regressions in a few seconds.
sweep-smoke:
	$(GO) run ./cmd/cavenet sweep -nodes 10,14 -senders 2 -circuit 1000 -trials 2 -time 20 -protocols aodv,dymo

# The scenario catalogue end to end: list the registry, then run one ring
# and one urban workload under the invariant harness (non-zero exit on any
# violation). manhattan exercises the street-grid mobility substrate and
# GPSR geographic forwarding; downtown covers the OLSR HNA V2I uplink.
scenario-smoke:
	$(GO) run ./cmd/cavenet scenario list
	$(GO) run ./cmd/cavenet scenario run signalized -time 15 -seed 3
	$(GO) run ./cmd/cavenet scenario run manhattan -time 15 -seed 3
	$(GO) run ./cmd/cavenet scenario run downtown -time 15 -seed 3

# The fault-injection substrate end to end: the churn workload under the
# invariant harness for every protocol (non-zero exit on any conservation
# or custody violation), plus an ad-hoc fault plan through the CLI parser.
churn-smoke:
	$(GO) run ./cmd/cavenet scenario run churn -protocol aodv -time 20 -seed 2
	$(GO) run ./cmd/cavenet scenario run churn -protocol olsr -time 20 -seed 2
	$(GO) run ./cmd/cavenet scenario run churn -protocol dymo -time 20 -seed 2
	$(GO) run ./cmd/cavenet scenario run churn -protocol gpsr -time 20 -seed 2
	$(GO) run ./cmd/cavenet scenario run highway -time 20 -seed 2 -faults "blackout:6,4,0.5;impair:0-1,2,10,0.3,3"

# The experiment service end to end: start the daemon, submit the golden
# grid, require the fetched CSV byte-identical to the CLI sweep output,
# and require a resubmitted grid served wholly from the content-addressed
# cache (zero new kernel runs by the job counters).
serve-smoke:
	$(GO) test ./cmd/cavenet/ -run TestServeSmoke -count=1

# A few seconds of each parser fuzz target: keeps the fuzz harnesses
# compiling and catches shallow parser regressions in CI. Open-ended
# hunting: go test ./internal/trace -fuzz FuzzParseNS2
fuzz-smoke:
	$(GO) test ./internal/trace/ -fuzz FuzzParseNS2 -fuzztime 5s -run XXX
	$(GO) test ./internal/trace/ -fuzz FuzzParseBonnMotion -fuzztime 5s -run XXX
	$(GO) test ./internal/fault/ -fuzz FuzzParseSpec -fuzztime 5s -run XXX
	$(GO) test ./internal/scenario/ -fuzz FuzzUrbanSpec -fuzztime 5s -run XXX
	$(GO) test ./internal/sim/ -fuzz FuzzKernelDifferential -fuzztime 5s -run XXX

# One iteration of the broadcast scaling bench: catches gross perf
# regressions (e.g. the culling silently disabled) without the minutes-long
# full table from PERF.md.
bench-smoke:
	$(GO) test ./internal/phy/ -bench ChannelBroadcast -benchtime=1x -benchmem -run XXX

# One iteration of the routing control-plane bench: catches gross
# regressions (e.g. the dense kernels silently allocating) in seconds,
# mirroring the ChannelBroadcast smoke.
bench-routing-smoke:
	$(GO) test ./internal/routing/olsr/ -bench OLSRControlPlane -benchtime=1x -benchmem -run XXX

# One iteration of the N=1k mobility benches: catches the streaming path
# silently re-materializing (its B/op is the whole point — see the
# "Streaming mobility" section of PERF.md).
bench-mobility-smoke:
	$(GO) test ./internal/mobility/ -bench 'MobilityRecordRoadN1k|MobilityStreamRoadN1k' -benchtime=1x -benchmem -run XXX

# One iteration of the 10k-ticker kernel bench on both queue paths:
# catches the calendar queue silently losing its O(1) behavior (or the
# oracle switch breaking) without the full depth table from PERF.md.
bench-kernel-smoke:
	$(GO) test ./internal/sim/ -bench 'PeriodicTickers10k' -benchtime=1x -benchmem -run XXX

# One iteration of the AODV/DYMO data-plane benches on both table paths:
# catches the dense tables silently allocating (their 0 allocs/op is the
# point) or the oracle switch breaking, in seconds.
bench-dataplane-smoke:
	$(GO) test ./internal/routing/aodv/ -bench 'AODVForward|AODVRREQStorm' -benchtime=1x -benchmem -run XXX
	$(GO) test ./internal/routing/dymo/ -bench 'DYMOForward|DYMORREQStorm' -benchtime=1x -benchmem -run XXX

# Full AODV/DYMO data-plane table (per-packet forwarding work and the
# RREQ-storm world, dense vs map oracle); see the "Routing data plane"
# section of PERF.md.
bench-dataplane:
	$(GO) test ./internal/routing/aodv/ -bench AODVForward -benchmem -benchtime=2s -run XXX
	$(GO) test ./internal/routing/aodv/ -bench AODVRREQStorm -benchmem -benchtime=20x -run XXX
	$(GO) test ./internal/routing/dymo/ -bench DYMOForward -benchmem -benchtime=2s -run XXX
	$(GO) test ./internal/routing/dymo/ -bench DYMORREQStorm -benchmem -benchtime=20x -run XXX

# Full event-kernel table (mixed workloads plus schedule/pop at
# 1k/10k/100k pending, calendar vs heap oracle); see the "Event kernel"
# section of PERF.md.
bench-kernel:
	$(GO) test ./internal/sim/ -bench 'PeriodicTickers10k|CancelHeavy|FarFutureOverflow|MetroArrivals|SchedulePopPending' -benchmem -benchtime=2s -run XXX

# Full routing control-plane table (dense vs oracle at N=100/1k plus the
# steady-state purge); see the "Routing control plane" section of PERF.md.
bench-routing:
	$(GO) test ./internal/routing/olsr/ -bench 'OLSRControlPlane|OLSRPurge' -benchmem -benchtime=50x -run XXX
	$(GO) test ./internal/core/ -bench 'ScenarioOLSRN1000' -benchmem -benchtime=1x -run XXX

# Full benchmark tables; see PERF.md for interpretation.
bench:
	$(GO) test ./internal/phy/ -bench 'ChannelBroadcast|MobilityTick' -benchmem -benchtime=2000x -run XXX
	$(GO) test ./internal/netsim/ -bench 'Connectivity|Components' -benchmem -benchtime=20x -run XXX
	$(GO) test ./internal/sim/ -bench . -benchmem -run XXX

ci: build vet fmt-check staticcheck test bench-smoke bench-routing-smoke bench-mobility-smoke bench-kernel-smoke bench-dataplane-smoke sweep-smoke scenario-smoke churn-smoke serve-smoke fuzz-smoke
