package cavenet

import (
	"cavenet/internal/core"
	"cavenet/internal/mobility"
)

// This file exposes the multi-lane highway analysis behind the paper's
// Fig. 1 discussion: lanes affect connectivity (relays on other lanes fill
// gaps) and interference (opposite-lane transmissions collide).
//
// Multi-lane highway *assembly* moved to the scenario registry (see
// scenarios.go and `cavenet scenario list`): build traces with
// ScenarioTrace from a registered or custom ScenarioSpec instead of
// hand-rolling lane configs.

// ConnectivityComponents groups the trace's nodes, at time tsec, into
// radio-connectivity components for the given transmission range.
func ConnectivityComponents(tr *mobility.SampledTrace, tsec, rangeMeters float64) [][]int {
	return core.ConnectivityComponents(tr, tsec, rangeMeters)
}

// LargestComponentFraction reports the share of nodes in the largest
// connectivity component at time tsec.
func LargestComponentFraction(tr *mobility.SampledTrace, tsec, rangeMeters float64) float64 {
	return core.LargestComponentFraction(tr, tsec, rangeMeters)
}

// InterferenceConfig parameterizes the Fig. 1-b opposite-lane interference
// experiment.
type InterferenceConfig = core.InterferenceConfig

// InterferenceResult compares a flow's delivery with the opposite lane
// silent vs. transmitting.
type InterferenceResult = core.InterferenceResult

// Interference runs the Fig. 1-b experiment: the same two-lane mobility
// twice, once with the opposite lane silent and once with it carrying its
// own traffic, and reports the delivery and MAC-retry impact.
func Interference(cfg InterferenceConfig) (InterferenceResult, error) {
	return core.InterferenceExperiment(cfg)
}
