package main

import (
	"fmt"
	"os"

	"cavenet"
	"cavenet/internal/plot"
)

func cmdFundamental(args []string) error {
	fs := newFlagSet("fundamental")
	length := fs.Int("L", 400, "lane length in cells")
	trials := fs.Int("trials", 20, "Monte-Carlo trials per point")
	iters := fs.Int("iters", 500, "iterations per trial")
	warmup := fs.Int("warmup", 0, "discarded steps per trial")
	seed := fs.Int64("seed", 1, "root seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	// The paper's Fig. 4 overlays p=0 and p=0.5.
	var series [][]float64
	var density []float64
	for _, p := range []float64{0, 0.5} {
		pts, err := cavenet.FundamentalDiagram(cavenet.FundamentalConfig{
			LaneLength: *length,
			SlowdownP:  p,
			Trials:     *trials,
			Iterations: *iters,
			Warmup:     *warmup,
			Seed:       *seed,
		})
		if err != nil {
			return err
		}
		col := make([]float64, len(pts))
		if density == nil {
			density = make([]float64, len(pts))
			for i, pt := range pts {
				density[i] = pt.Density
			}
		}
		for i, pt := range pts {
			col[i] = pt.Flow
		}
		series = append(series, col)
	}
	return plot.MultiSeries(os.Stdout, "rho", density, []string{"J_p0", "J_p0.5"}, series)
}

func cmdSpaceTime(args []string) error {
	fs := newFlagSet("spacetime")
	length := fs.Int("L", 400, "lane length in cells")
	rho := fs.Float64("rho", 0.1, "vehicle density")
	p := fs.Float64("p", 0.3, "slowdown probability")
	steps := fs.Int("steps", 100, "steps to plot")
	warmup := fs.Int("warmup", 0, "discarded steps")
	seed := fs.Int64("seed", 1, "root seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	rows, err := cavenet.SpaceTime(cavenet.SpaceTimeConfig{
		LaneLength: *length,
		Density:    *rho,
		SlowdownP:  *p,
		Steps:      *steps,
		Warmup:     *warmup,
		Seed:       *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("# space-time plot: L=%d rho=%v p=%v (space left-right, time top-down)\n",
		*length, *rho, *p)
	return plot.SpaceTimeASCII(os.Stdout, rows)
}

func cmdVelocity(args []string) error {
	fs := newFlagSet("velocity")
	length := fs.Int("L", 400, "lane length in cells")
	p := fs.Float64("p", 0.3, "slowdown probability")
	steps := fs.Int("steps", 5000, "steps to simulate")
	seed := fs.Int64("seed", 1, "root seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	// Fig. 6 overlays ρ=0.1 and ρ=0.5.
	var cols [][]float64
	for _, rho := range []float64{0.1, 0.5} {
		s, err := cavenet.VelocitySeries(cavenet.VelocityConfig{
			LaneLength: *length, Density: rho, SlowdownP: *p, Steps: *steps, Seed: *seed,
		})
		if err != nil {
			return err
		}
		cols = append(cols, s)
	}
	ts := make([]float64, *steps)
	for i := range ts {
		ts[i] = float64(i)
	}
	return plot.MultiSeries(os.Stdout, "t", ts, []string{"v_rho0.1", "v_rho0.5"}, cols)
}

func cmdPeriodogram(args []string) error {
	fs := newFlagSet("periodogram")
	length := fs.Int("L", 400, "lane length in cells")
	rho := fs.Float64("rho", 0.05, "vehicle density")
	p := fs.Float64("p", 0.5, "slowdown probability")
	steps := fs.Int("steps", 8192, "steps to simulate")
	seed := fs.Int64("seed", 1, "root seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	res, err := cavenet.Periodogram(cavenet.VelocityConfig{
		LaneLength: *length, Density: *rho, SlowdownP: *p, Steps: *steps, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("# rho=%v p=%v  GPH slope=%.3f  Hurst=%.3f  (slope≈0, H≈0.5: SRD; slope<0, H→1: LRD)\n",
		*rho, *p, res.GPHSlope, res.Hurst)
	return plot.Series(os.Stdout, "freq", "power", res.Spectrum.Freq, res.Spectrum.Power)
}

func cmdTransient(args []string) error {
	fs := newFlagSet("transient")
	length := fs.Int("L", 400, "lane length in cells")
	rho := fs.Float64("rho", 0.1, "vehicle density")
	p := fs.Float64("p", 0, "slowdown probability")
	steps := fs.Int("steps", 2000, "steps to simulate")
	seed := fs.Int64("seed", 1, "root seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	res, err := cavenet.Transient(cavenet.VelocityConfig{
		LaneLength: *length, Density: *rho, SlowdownP: *p, Steps: *steps, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("transient time tau = %d steps (tolerance-band), %d steps (MSER-5)\n",
		res.Tau, res.MSER)
	fmt.Println("mean velocity from a compact-jam start:")
	return plot.AsciiChart(os.Stdout, res.Series[:min(len(res.Series), 200)], 12)
}

func cmdRWDecay(args []string) error {
	fs := newFlagSet("rwdecay")
	nodes := fs.Int("nodes", 100, "number of walkers")
	vmin := fs.Float64("vmin", 0.1, "minimum speed m/s")
	vmax := fs.Float64("vmax", 20, "maximum speed m/s")
	dur := fs.Float64("duration", 2000, "seconds to simulate")
	seed := fs.Int64("seed", 1, "root seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	_, vel := cavenet.RandomWaypointDecay(cavenet.RWDecayConfig{
		Nodes: *nodes, VMin: *vmin, VMax: *vmax, Duration: *dur, Seed: *seed,
	})
	ts := make([]float64, len(vel))
	for i := range ts {
		ts[i] = float64(i)
	}
	fmt.Printf("# Random Waypoint mean velocity: the decay the CA model avoids (v settles only asymptotically)\n")
	return plot.Series(os.Stdout, "t", "v", ts, vel)
}

func cmdTrace(args []string) error {
	fs := newFlagSet("trace")
	nodes := fs.Int("nodes", 30, "vehicles on the circuit")
	circuit := fs.Float64("circuit", 3000, "circuit length in meters")
	dur := fs.Float64("duration", 100, "trace duration in seconds")
	seed := fs.Int64("seed", 1, "root seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	tr, err := cavenet.CircuitTrace(cavenet.Scenario{
		Nodes:         *nodes,
		CircuitMeters: *circuit,
		SimTime:       secondsToSim(*dur),
		Seed:          *seed,
	})
	if err != nil {
		return err
	}
	return cavenet.ExportNS2(os.Stdout, tr)
}
