package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file tests lock the user-visible CLI surfaces: the scenario
// catalogue listing, the scenario sweep CSV, and the density sweep CSV
// (header *and* values — the engine's determinism contract makes full
// outputs reproducible). Regenerate with
//
//	go test ./cmd/cavenet -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output diverged from %s.\n--- got ---\n%s\n--- want ---\n%s\nRe-run with -update if the change is intended.",
			path, got, want)
	}
}

// captureStdout runs f with os.Stdout redirected into a buffer, for the
// subcommands that print straight to the terminal.
func captureStdout(t *testing.T, f func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestGoldenScenarioList(t *testing.T) {
	var buf bytes.Buffer
	if err := scenarioMain(&buf, []string{"list"}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "scenario_list.golden", buf.Bytes())
}

func TestGoldenScenarioSweepCSV(t *testing.T) {
	var buf bytes.Buffer
	err := scenarioSweep(&buf, []string{
		"-scenarios", "highway,sparse", "-protocols", "aodv,dymo",
		"-trials", "2", "-seed", "1", "-quick",
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "scenario_sweep.golden", buf.Bytes())
}

func TestGoldenSweepCSV(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdSweep([]string{
			"-nodes", "10,14", "-senders", "2", "-circuit", "1000",
			"-trials", "2", "-time", "20", "-protocols", "aodv,dymo", "-seed", "1",
		})
	})
	checkGolden(t, "sweep.golden", out)
}
