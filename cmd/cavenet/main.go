// Command cavenet regenerates every table and figure of the CAVENET paper
// from the command line.
//
// Usage:
//
//	cavenet <experiment> [flags]
//
// Experiments:
//
//	fundamental   Fig. 4  — flow vs. density diagram (CSV)
//	spacetime     Fig. 5  — space-time plot (ASCII art)
//	velocity      Fig. 6  — sample realizations of the mean velocity (CSV)
//	periodogram   Fig. 7  — spectrum of the mean velocity + LRD indicators
//	protocols     Figs. 8–11 + Table I — protocol evaluation
//	scenario      the workload catalogue: list, run, check, sweep
//	serve         HTTP experiment service with a content-addressed result cache
//	sweep         density × protocol × seed grids on the parallel engine
//	transient     §IV-B  — transient time of the CA model
//	rwdecay       §IV-B  — Random Waypoint velocity-decay contrast
//	trace         Fig. 3 — export the Table I mobility as an ns-2 scenario
//
// Every experiment takes -seed and writes CSV or ASCII to stdout.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the single exit path: every command returns its error here and
// nowhere calls os.Exit, so failures map to one code scheme — 0 success
// (including -h), 2 usage mistakes, 1 runtime failures — and command
// functions stay callable from tests and the serve daemon.
func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "fundamental":
		err = cmdFundamental(rest)
	case "spacetime":
		err = cmdSpaceTime(rest)
	case "velocity":
		err = cmdVelocity(rest)
	case "periodogram":
		err = cmdPeriodogram(rest)
	case "protocols":
		err = cmdProtocols(rest)
	case "scenario":
		err = cmdScenario(rest)
	case "serve":
		err = cmdServe(rest)
	case "sweep":
		err = cmdSweep(rest)
	case "transient":
		err = cmdTransient(rest)
	case "rwdecay":
		err = cmdRWDecay(rest)
	case "trace":
		err = cmdTrace(rest)
	case "help", "-h", "--help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "cavenet: unknown experiment %q\n\n", cmd)
		usage()
		return 2
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	default:
		var ue *usageError
		if errors.As(err, &ue) {
			if !ue.printed {
				fmt.Fprintf(os.Stderr, "cavenet %s: %v\n", cmd, err)
			}
			return 2
		}
		fmt.Fprintf(os.Stderr, "cavenet %s: %v\n", cmd, err)
		return 1
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `cavenet — CAVENET vehicular-network simulation tool

usage: cavenet <experiment> [flags]

experiments:
  fundamental   Fig. 4  flow vs. density (CSV)
  spacetime     Fig. 5  space-time plot (ASCII)
  velocity      Fig. 6  mean-velocity realizations (CSV)
  periodogram   Fig. 7  spectrum + SRD/LRD indicators (CSV + summary)
  protocols     Figs. 8-11, Table I  protocol evaluation (CSV)
  scenario      workload catalogue: list | run <name> | check | sweep (invariant-harnessed)
  serve         HTTP experiment service: sweep queue + content-addressed result cache
  sweep         Monte-Carlo density x protocol grids, parallel + deterministic (CSV/JSON)
  transient     transient-time measurement
  rwdecay       Random Waypoint velocity decay (CSV)
  trace         export Table I mobility as an ns-2 scenario file

run 'cavenet <experiment> -h' for flags.
`)
}
