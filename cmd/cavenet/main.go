// Command cavenet regenerates every table and figure of the CAVENET paper
// from the command line.
//
// Usage:
//
//	cavenet <experiment> [flags]
//
// Experiments:
//
//	fundamental   Fig. 4  — flow vs. density diagram (CSV)
//	spacetime     Fig. 5  — space-time plot (ASCII art)
//	velocity      Fig. 6  — sample realizations of the mean velocity (CSV)
//	periodogram   Fig. 7  — spectrum of the mean velocity + LRD indicators
//	protocols     Figs. 8–11 + Table I — protocol evaluation
//	scenario      the workload catalogue: list, run, check, sweep
//	sweep         density × protocol × seed grids on the parallel engine
//	transient     §IV-B  — transient time of the CA model
//	rwdecay       §IV-B  — Random Waypoint velocity-decay contrast
//	trace         Fig. 3 — export the Table I mobility as an ns-2 scenario
//
// Every experiment takes -seed and writes CSV or ASCII to stdout.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "fundamental":
		err = cmdFundamental(args)
	case "spacetime":
		err = cmdSpaceTime(args)
	case "velocity":
		err = cmdVelocity(args)
	case "periodogram":
		err = cmdPeriodogram(args)
	case "protocols":
		err = cmdProtocols(args)
	case "scenario":
		err = cmdScenario(args)
	case "sweep":
		err = cmdSweep(args)
	case "transient":
		err = cmdTransient(args)
	case "rwdecay":
		err = cmdRWDecay(args)
	case "trace":
		err = cmdTrace(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cavenet: unknown experiment %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cavenet %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `cavenet — CAVENET vehicular-network simulation tool

usage: cavenet <experiment> [flags]

experiments:
  fundamental   Fig. 4  flow vs. density (CSV)
  spacetime     Fig. 5  space-time plot (ASCII)
  velocity      Fig. 6  mean-velocity realizations (CSV)
  periodogram   Fig. 7  spectrum + SRD/LRD indicators (CSV + summary)
  protocols     Figs. 8-11, Table I  protocol evaluation (CSV)
  scenario      workload catalogue: list | run <name> | check | sweep (invariant-harnessed)
  sweep         Monte-Carlo density x protocol grids, parallel + deterministic (CSV/JSON)
  transient     transient-time measurement
  rwdecay       Random Waypoint velocity decay (CSV)
  trace         export Table I mobility as an ns-2 scenario file

run 'cavenet <experiment> -h' for flags.
`)
}
