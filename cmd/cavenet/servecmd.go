package main

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cavenet/internal/serve"
)

// cmdServe runs the experiment service until SIGINT/SIGTERM, then
// drains: admission closes immediately, running jobs finish (up to
// -drain-timeout), and open connections shut down cleanly.
func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:8337", "listen address")
	workers := fs.Int("workers", 0, "concurrent simulation jobs (0 = one per core)")
	queue := fs.Int("queue", 256, "max outstanding cell jobs; submissions beyond it are rejected with 503")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request handler timeout (result streams are exempt)")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "max wait for running jobs on shutdown")
	quiet := fs.Bool("quiet", false, "suppress request and job logging")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	lg := log.New(os.Stderr, "cavenet serve: ", log.LstdFlags)
	reqLog := lg
	if *quiet {
		reqLog = log.New(io.Discard, "", 0)
	}
	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *reqTimeout,
		Log:            reqLog,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	lg.Printf("listening on %s (queue depth %d, code %s)", *addr, *queue, serve.CodeVersion())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately via the default handler
	lg.Printf("signal received; draining jobs")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		lg.Printf("%v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	lg.Printf("drained; exiting")
	return nil
}
