package main

import (
	"fmt"
	"math"
	"os"

	"cavenet"
	"cavenet/internal/plot"
	"cavenet/internal/sim"
)

func secondsToSim(s float64) sim.Time { return sim.Seconds(s) }

func cmdProtocols(args []string) error {
	fs := newFlagSet("protocols")
	protocol := fs.String("protocol", "all", "aodv, olsr, dymo, gpsr or all")
	nodes := fs.Int("nodes", 30, "vehicles on the circuit (Table I: 30)")
	circuit := fs.Float64("circuit", 3000, "circuit length in meters (Table I: 3000)")
	simTime := fs.Float64("time", 100, "simulated seconds (Table I: 100)")
	seed := fs.Int64("seed", 1, "root seed")
	etx := fs.Bool("etx", false, "use the OLSR ETX/LQ metric")
	surface := fs.Bool("surface", false, "print the full goodput surface CSV (Figs. 8-10)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	cfg := cavenet.Scenario{
		Nodes:         *nodes,
		CircuitMeters: *circuit,
		SimTime:       secondsToSim(*simTime),
		Seed:          *seed,
		OLSRETX:       *etx,
	}
	protocols, err := parseProtocolList(*protocol)
	if err != nil {
		return err
	}

	results, err := cavenet.Compare(cfg, protocols)
	if err != nil {
		return err
	}

	// Fig. 11: PDR per sender, one column per protocol.
	fmt.Println("# Fig. 11 — packet delivery ratio per sender")
	fmt.Printf("sender")
	for _, p := range protocols {
		fmt.Printf(",%s", p)
	}
	fmt.Println()
	for _, s := range results[protocols[0]].Config.Senders {
		fmt.Printf("%d", s)
		for _, p := range protocols {
			fmt.Printf(",%.3f", results[p].PDR[s])
		}
		fmt.Println()
	}
	fmt.Println()

	// Summary (Table I scenario totals + the paper's future-work metrics).
	fmt.Println("# summary")
	fmt.Println("protocol,totalPDR,ctrlPackets,ctrlBytes,meanDelayMaxSender_s,macRetries,peakGoodput_bps")
	for _, p := range protocols {
		r := results[p]
		maxSender := r.Config.Senders[len(r.Config.Senders)-1]
		peak := 0.0
		for _, s := range r.Config.Senders {
			for _, bps := range r.Goodput[s] {
				peak = math.Max(peak, bps)
			}
		}
		fmt.Printf("%s,%.3f,%d,%d,%.4f,%d,%.0f\n",
			p, r.TotalPDR(), r.ControlPackets, r.ControlBytes,
			r.MeanDelaySec[maxSender], r.MACStats.Retries, peak)
	}

	if *surface {
		for _, p := range protocols {
			r := results[p]
			fmt.Printf("\n# goodput surface for %s (Figs. 8-10): rows senders, cols seconds, values bps\n", p)
			rows := r.Config.Senders
			bins := len(r.Goodput[rows[0]])
			cols := make([]float64, bins)
			for i := range cols {
				cols[i] = float64(i)
			}
			vals := make([][]float64, len(rows))
			for i, s := range rows {
				vals[i] = r.Goodput[s]
			}
			if err := plot.Surface(os.Stdout, "sender", rows, "t", cols, vals); err != nil {
				return err
			}
		}
	}
	return nil
}
