package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	"cavenet/internal/fault"
	"cavenet/internal/scenario"
	"cavenet/internal/sim"
)

// cmdScenario dispatches the scenario-registry subcommands.
func cmdScenario(args []string) error {
	return scenarioMain(os.Stdout, args)
}

// scenarioMain is cmdScenario writing to w (golden tests capture it).
func scenarioMain(w io.Writer, args []string) error {
	if len(args) == 0 {
		return badUsage("usage: cavenet scenario <list|run|check|sweep> [flags]")
	}
	switch args[0] {
	case "list":
		return scenarioList(w)
	case "run":
		return scenarioRun(w, args[1:])
	case "check":
		return scenarioCheck(w, args[1:])
	case "sweep":
		return scenarioSweep(w, args[1:])
	default:
		return badUsage("unknown scenario subcommand %q (want list, run, check or sweep)", args[0])
	}
}

// scenarioList prints the catalogue table (specs are stored normalized,
// so all defaults are visible).
func scenarioList(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tLANES\tVEHICLES\tCIRCUIT\tSIGNALS\tFLOWS\tDESCRIPTION")
	for _, s := range scenario.Specs() {
		lanes, circuit, signals := s.Lanes, s.CircuitMeters, len(s.Signals)
		if s.Urban() {
			// One-way streets are the grid's lanes; CIRCUIT reports the
			// total street length they add up to.
			streets := s.GridRows*(s.GridCols-1) + s.GridCols*(s.GridRows-1)
			lanes = streets
			circuit = float64(streets) * s.BlockMeters
			if s.GridSignalGreen > 0 {
				signals = streets
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0fm\t%d\t%d\t%s\n",
			s.Name, lanes, s.TotalVehicles(), circuit, signals, len(s.Flows), s.Description)
	}
	return tw.Flush()
}

func scenarioRun(w io.Writer, args []string) error {
	fs := newFlagSet("scenario run")
	protocol := fs.String("protocol", "", "override the spec's routing protocol (aodv, olsr, dymo, gpsr)")
	seed := fs.Int64("seed", 0, "override the spec's seed")
	var simTime float64
	fs.Float64Var(&simTime, "time", 0, "override the simulated seconds")
	fs.Float64Var(&simTime, "duration", 0, "alias for -time")
	nodes := fs.Int("nodes", 0, "rescale the fleet to this many vehicles at the spec's density (circuit and signals scale along) for quick scale experiments")
	checked := fs.Bool("check", true, "run under the invariant harness")
	format := fs.String("format", "text", "text or json")
	churn := fs.Float64("churn", 0, "inject node churn at this rate per node per minute (4 s crash outages); shorthand for -faults churn:RATE")
	gpsrOracle := fs.Bool("gpsr-oracle", false, "route GPSR greedy decisions through the brute-force differential oracle (bit-identical to the spatial-grid fast path)")
	kernelOracle := fs.Bool("kernel-oracle", false, "run on the kernel's binary-heap differential oracle instead of the calendar event queue (bit-identical, slower)")
	dataPlaneOracle := fs.Bool("dataplane-oracle", false, "route the AODV/DYMO routing tables through the map-based differential oracles instead of the dense-index fast paths (bit-identical, slower)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a post-run heap profile to this file")
	faults := fs.String("faults", "", "fault plan, ';'-joined clauses: churn:RATE[,DOWNSEC[,graceful]] | blackout:START,DUR[,FRACTION] | partition:START,DUR | impair:A-B,START,DUR[,LOSS[,ATTENDB]]; replaces the scenario's declared faults")
	// Accept the name before or after the flags.
	var name string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name, args = args[0], args[1:]
	}
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if name == "" && fs.NArg() == 1 {
		name = fs.Arg(0)
	} else if name == "" || fs.NArg() > 0 {
		return badUsage("usage: cavenet scenario run <name> [flags]; see 'cavenet scenario list'")
	}
	// Fail unknown formats before the simulation runs, not after.
	outFormat, err := parseFormat(*format, "text", "json")
	if err != nil {
		return err
	}
	spec, ok := scenario.Get(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q; see 'cavenet scenario list'", name)
	}
	if *protocol != "" {
		p, err := scenario.ParseProtocol(*protocol)
		if err != nil {
			return err
		}
		spec.Protocol = p
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *nodes > 0 {
		scaled, err := spec.WithVehicles(*nodes)
		if err != nil {
			return err
		}
		spec = scaled
	}
	if simTime > 0 {
		spec.SimTime = sim.Seconds(simTime)
		for i := range spec.Flows {
			spec.Flows[i].Start = 0 // re-derive the window from the new horizon
			spec.Flows[i].Stop = 0
		}
	}
	if *faults != "" {
		fspec, err := fault.ParseSpec(*faults)
		if err != nil {
			return err
		}
		spec.Faults = fspec
	}
	if *churn > 0 {
		spec.Faults.ChurnRatePerMin = *churn
	}
	if *gpsrOracle {
		spec.GPSROracle = true
	}
	if *kernelOracle {
		spec.KernelOracle = true
	}
	if *dataPlaneOracle {
		spec.DataPlaneOracle = true
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cavenet: closing %s: %v\n", *cpuProfile, err)
			}
		}()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle the heap so live bytes reflect retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "cavenet: writing %s: %v\n", *memProfile, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cavenet: closing %s: %v\n", *memProfile, err)
			}
		}()
	}

	var res *scenario.Result
	var report fmt.Stringer = nil
	violations := 0
	if *checked {
		r, rep, err := scenario.RunChecked(spec)
		if err != nil {
			return err
		}
		res = r
		violations = rep.Total()
		report = rep
	} else {
		r, err := scenario.Run(spec)
		if err != nil {
			return err
		}
		res = r
	}

	if outFormat == "json" {
		out := struct {
			*scenario.Result
			Violations int `json:"violations"`
		}{res, violations}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(w, "scenario: %s (%s)\n", res.Spec.Name, res.Spec.Description)
		fmt.Fprintf(w, "protocol: %s  seed: %d  time: %.0fs\n",
			res.Spec.Protocol, res.Spec.Seed, res.Spec.SimTime.Seconds())
		fmt.Fprintf(w, "total PDR: %.3f  delivered: %d  in flight at end: %d  control packets: %d\n",
			res.TotalPDR(), res.TotalDelivered(), res.InFlight, res.ControlPackets)
		if r := res.Resilience; r != nil {
			fmt.Fprintf(w, "faults: %d windows  downtime: %.1f node-s  PDR during/outside windows: %.3f/%.3f\n",
				r.Windows, r.DowntimeNodeSec, r.PDRDuring, r.PDROutside)
			if r.Recoveries > 0 {
				fmt.Fprintf(w, "recoveries: %d  re-converged (delivery resumed): %d  mean re-convergence: %.2fs\n",
					r.Recoveries, r.Reconverged, r.MeanReconvergeSec)
			}
		}
		if u := res.Uplink; u != nil {
			fmt.Fprintf(w, "uplink (V2I via RSU gateway): sent %d  delivered %d  PDR %.3f\n",
				u.Sent, u.Delivered, u.PDR)
		}
		if len(res.Unreachable) > 0 {
			var total uint64
			for _, u := range res.Unreachable {
				total += u
			}
			fmt.Fprintf(w, "unreachable drops (no route to destination): %d\n", total)
		}
		fmt.Fprintln(w, "sender  sent  delivered    PDR   meanDelay")
		for _, s := range res.Senders {
			fmt.Fprintf(w, "%4d   %5d   %6d    %.3f   %7.4fs\n",
				s, res.Sent[s], res.Delivered[s], res.PDR[s], res.MeanDelaySec[s])
		}
		if *checked {
			if violations == 0 {
				fmt.Fprintln(w, "invariants: all hold")
			} else {
				fmt.Fprintf(w, "invariants: %d VIOLATIONS\n%s", violations, report)
			}
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d invariant violations", violations)
	}
	return nil
}

func scenarioCheck(w io.Writer, args []string) error {
	fs := newFlagSet("scenario check")
	protocols := fs.String("protocols", "all", "comma list of aodv,olsr,dymo,gpsr, or all")
	seeds := fs.Int("seeds", 3, "seeds per (scenario, protocol) cell")
	quick := fs.Bool("quick", true, "run the shrunk (test-sized) spec variants")
	// Accept scenario names before or after the flags.
	var names []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		names, args = append(names, args[0]), args[1:]
	}
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	names = append(names, fs.Args()...)
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		// Heavy scale workloads (metro) are checked only when named
		// explicitly; "all" means the exhaustive-suite catalogue.
		names = names[:0]
		for _, n := range scenario.Names() {
			if s, ok := scenario.Get(n); ok && !s.Heavy {
				names = append(names, n)
			}
		}
	}
	protoList, err := parseProtocolList(*protocols)
	if err != nil {
		return err
	}
	failed := 0
	for _, name := range names {
		spec, ok := scenario.Get(name)
		if !ok {
			return fmt.Errorf("unknown scenario %q", name)
		}
		for _, p := range protoList {
			for s := int64(1); s <= int64(*seeds); s++ {
				run := spec
				if *quick {
					run = run.Shrunk()
				}
				run.Protocol = p
				run.Seed = s
				_, rep, err := scenario.RunChecked(run)
				if err != nil {
					return err
				}
				if rep.Ok() {
					fmt.Fprintf(w, "PASS %-14s %-5s seed=%d\n", name, p, s)
				} else {
					failed++
					fmt.Fprintf(w, "FAIL %-14s %-5s seed=%d\n%s", name, p, s, rep)
				}
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d cells violated invariants", failed)
	}
	fmt.Fprintln(w, "all scenarios hold all invariants")
	return nil
}

func scenarioSweep(w io.Writer, args []string) error {
	fs := newFlagSet("scenario sweep")
	scenarios := fs.String("scenarios", "all", "comma list of scenario names, or all")
	protocols := fs.String("protocols", "all", "comma list of aodv,olsr,dymo,gpsr, or all")
	trials := fs.Int("trials", 5, "seeded replications per cell")
	seed := fs.Int64("seed", 1, "root seed; trial t of scenario s forks root->s->t")
	workers := fs.Int("workers", 0, "worker goroutines (0 = one per core); any value gives bit-identical output")
	quick := fs.Bool("quick", false, "sweep the shrunk (test-sized) spec variants")
	checked := fs.Bool("check", true, "count invariant violations per cell")
	simTime := fs.Float64("time", 0, "override every spec's simulated seconds (flow windows re-derive)")
	nodes := fs.Int("nodes", 0, "rescale every spec to this many vehicles at its declared density")
	format := fs.String("format", "csv", "csv or json")
	output := fs.String("o", "", "write to this file instead of stdout")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	outFormat, err := parseFormat(*format, "csv", "json")
	if err != nil {
		return err
	}
	var names []string
	if !strings.EqualFold(*scenarios, "all") {
		for _, n := range strings.Split(*scenarios, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	protoList, err := parseProtocolList(*protocols)
	if err != nil {
		return err
	}
	rows, err := scenario.Sweep(scenario.SweepConfig{
		Scenarios:       names,
		Protocols:       protoList,
		Trials:          *trials,
		Seed:            *seed,
		Workers:         *workers,
		Shrunk:          *quick,
		Checked:         *checked,
		OverrideTimeSec: *simTime,
		OverrideNodes:   *nodes,
	})
	if err != nil {
		return err
	}
	if *output != "" {
		f, err := openOutput(*output)
		if err != nil {
			return err
		}
		if err := writeScenarioSweep(f, outFormat, rows); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return writeScenarioSweep(w, outFormat, rows)
}

// writeScenarioSweep renders through the same functions the serve
// artifact endpoint uses, so CLI and service output are byte-identical.
func writeScenarioSweep(w io.Writer, format string, rows []scenario.SweepRow) error {
	if format == "json" {
		return scenario.WriteSweepJSON(w, rows)
	}
	return scenario.WriteSweepCSV(w, rows)
}
