package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cavenet/internal/serve"
)

// TestServeSmoke is the end-to-end gate `make serve-smoke` runs in CI:
// start the daemon, submit the golden grid, and require (1) the fetched
// CSV byte-identical to what `cavenet scenario sweep` prints for the
// same grid, and (2) a resubmission served wholly from cache — zero new
// kernel runs by the job counters.
func TestServeSmoke(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"scenarios":["highway","sparse"],"protocols":["aodv","dymo"],"trials":2,"seed":1,"quick":true}`
	type submitResp struct {
		ID         string `json:"id"`
		Total      int    `json:"totalRuns"`
		CachedRuns int    `json:"cachedRuns"`
		FreshRuns  int    `json:"freshRuns"`
	}
	submit := func() submitResp {
		t.Helper()
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		var sub submitResp
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	wait := func(id string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/sweeps/" + id + "/stream")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev struct {
				Type  string `json:"type"`
				Error string `json:"error"`
			}
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Type == "done" {
				if ev.Error != "" {
					t.Fatalf("sweep failed: %s", ev.Error)
				}
				return
			}
		}
		t.Fatalf("stream ended early: %v", sc.Err())
	}
	artifact := func(id string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/sweeps/" + id + "/artifact?format=csv")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact: status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	first := submit()
	wait(first.ID)
	served := artifact(first.ID)

	// The CLI's bytes for the identical grid.
	var cli bytes.Buffer
	err := scenarioSweep(&cli, []string{
		"-scenarios", "highway,sparse", "-protocols", "aodv,dymo",
		"-trials", "2", "-seed", "1", "-quick",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, cli.Bytes()) {
		t.Fatalf("daemon artifact differs from CLI output:\n--- serve ---\n%s--- cli ---\n%s", served, cli.Bytes())
	}
	// And both match the committed golden file.
	if golden, err := os.ReadFile(filepath.Join("testdata", "scenario_sweep.golden")); err == nil {
		if !bytes.Equal(served, golden) {
			t.Fatalf("daemon artifact diverged from scenario_sweep.golden:\n%s", served)
		}
	}

	jobsAfterFirst := srv.SnapshotMetrics().JobsDone
	second := submit()
	if second.FreshRuns != 0 || second.CachedRuns != second.Total {
		t.Fatalf("resubmission not wholly cache-served: %+v", second)
	}
	wait(second.ID)
	if m := srv.SnapshotMetrics(); m.JobsDone != jobsAfterFirst {
		t.Fatalf("resubmission ran %d new jobs", m.JobsDone-jobsAfterFirst)
	}
	if !bytes.Equal(artifact(second.ID), served) {
		t.Fatal("cache-served artifact not byte-identical to the fresh one")
	}
}
