package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestExitCodes pins the single-exit-path contract: 0 for success and
// -h, 2 for usage mistakes, 1 for runtime failures — with no os.Exit
// anywhere below main, which is what lets these tests (and the serve
// daemon) call command code without the process dying under them.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown experiment", []string{"frobnicate"}, 2},
		{"help", []string{"help"}, 0},
		{"help flag", []string{"--help"}, 0},
		{"subcommand help", []string{"sweep", "-h"}, 0},
		{"bad flag", []string{"sweep", "-no-such-flag"}, 2},
		{"bad flag value", []string{"protocols", "-nodes", "many"}, 2},
		{"scenario no subcommand", []string{"scenario"}, 2},
		{"scenario unknown subcommand", []string{"scenario", "frobnicate"}, 2},
		{"scenario run no name", []string{"scenario", "run"}, 2},
		{"scenario run unknown name", []string{"scenario", "run", "motorway9"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.want {
				t.Fatalf("run(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// TestUnknownFormatRejectedUpFront: a bad -format must exit 2 before any
// simulation runs. Each of these would otherwise burn a full sweep or a
// 100-simulated-second run before noticing; the time bound catches a
// regression to validate-after-run.
func TestUnknownFormatRejectedUpFront(t *testing.T) {
	cases := [][]string{
		{"sweep", "-format", "xml"},
		{"scenario", "sweep", "-format", "xml"},
		{"scenario", "run", "highway", "-format", "xml"},
	}
	for _, args := range cases {
		t.Run(args[0]+"/"+args[len(args)-1], func(t *testing.T) {
			start := time.Now()
			if got := run(args); got != 2 {
				t.Fatalf("run(%q) = %d, want 2", args, got)
			}
			if d := time.Since(start); d > 5*time.Second {
				t.Fatalf("format rejection took %v — it ran the experiment first", d)
			}
		})
	}
}

// TestSweepOutputFile: -o writes the same bytes stdout gets, locked to
// the golden file.
func TestSweepOutputFile(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "sweep.golden"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.csv")
	args := []string{
		"sweep", "-nodes", "10,14", "-senders", "2", "-circuit", "1000",
		"-trials", "2", "-time", "20", "-protocols", "aodv,dymo", "-seed", "1",
		"-o", path,
	}
	if got := run(args); got != 0 {
		t.Fatalf("run(%q) = %d", args, got)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("-o file differs from golden stdout output:\n%s", got)
	}
}

// TestScenarioSweepOutputFile: scenario sweep -o matches its golden too.
func TestScenarioSweepOutputFile(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "scenario_sweep.golden"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scenario_sweep.csv")
	args := []string{
		"scenario", "sweep", "-scenarios", "highway,sparse",
		"-protocols", "aodv,dymo", "-trials", "2", "-seed", "1", "-quick",
		"-o", path,
	}
	if got := run(args); got != 0 {
		t.Fatalf("run(%q) = %d", args, got)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("-o file differs from golden stdout output:\n%s", got)
	}
}
