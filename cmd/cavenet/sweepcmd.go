package main

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cavenet"
)

func parseProtocolList(s string) ([]cavenet.Protocol, error) {
	if strings.EqualFold(s, "all") {
		return []cavenet.Protocol{cavenet.AODV, cavenet.OLSR, cavenet.DYMO, cavenet.GPSR}, nil
	}
	var out []cavenet.Protocol
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "aodv":
			out = append(out, cavenet.AODV)
		case "olsr":
			out = append(out, cavenet.OLSR)
		case "dymo":
			out = append(out, cavenet.DYMO)
		case "gpsr":
			out = append(out, cavenet.GPSR)
		default:
			return nil, fmt.Errorf("unknown protocol %q", name)
		}
	}
	return out, nil
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func cmdSweep(args []string) error {
	fs := newFlagSet("sweep")
	protocol := fs.String("protocols", "all", "comma list of aodv,olsr,dymo,gpsr, or all")
	nodesFlag := fs.String("nodes", "30", "comma list of vehicle counts (the density axis)")
	senders := fs.Int("senders", 8, "CBR senders: nodes 1..N to node 0 (Table I: 8)")
	circuit := fs.Float64("circuit", 3000, "circuit length in meters (Table I: 3000)")
	simTime := fs.Float64("time", 100, "simulated seconds per trial (Table I: 100)")
	trials := fs.Int("trials", 20, "replications per grid point (the paper's ensembles use 20)")
	seed := fs.Int64("seed", 1, "root seed; trial t of density d forks seed->d->t")
	workers := fs.Int("workers", 0, "worker goroutines (0 = one per core); any value gives bit-identical output")
	format := fs.String("format", "csv", "csv or json")
	output := fs.String("o", "", "write to this file instead of stdout")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	// Validate the render knobs before the sweep runs, not after.
	outFormat, err := parseFormat(*format, "csv", "json")
	if err != nil {
		return err
	}

	protocols, err := parseProtocolList(*protocol)
	if err != nil {
		return err
	}
	nodes, err := parseIntList(*nodesFlag)
	if err != nil {
		return err
	}
	if *senders < 1 {
		return fmt.Errorf("need at least one sender")
	}
	senderIDs := make([]int, *senders)
	for i := range senderIDs {
		senderIDs[i] = i + 1
	}

	pts, err := cavenet.Sweep(cavenet.SweepConfig{
		Base: cavenet.Scenario{
			CircuitMeters: *circuit,
			SimTime:       secondsToSim(*simTime),
			Senders:       senderIDs,
			Seed:          *seed,
		},
		Protocols: protocols,
		Nodes:     nodes,
		Trials:    *trials,
		Workers:   *workers,
	})
	if err != nil {
		return err
	}

	out, err := openOutput(*output)
	if err != nil {
		return err
	}
	if err := writeDensitySweep(out, outFormat, pts); err != nil {
		out.Close()
		return err
	}
	// A close failure on a file is a truncated table: report it.
	return out.Close()
}

// writeDensitySweep renders the density-sweep table with every write
// error-checked: a closed pipe or full disk fails the command instead of
// silently truncating the output.
func writeDensitySweep(w io.Writer, format string, pts []cavenet.SweepPoint) error {
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(pts)
	}
	if _, err := fmt.Fprintln(w, "# density × protocol sweep; every metric is mean over trials with a 95% CI half-width"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "protocol,nodes,densityPerKm,trials,pdr,pdrCI95,goodput_bps,goodputCI95_bps,delay_s,delayCI95_s,ctrlPackets,ctrlPacketsCI95,macRetries,macRetriesCI95"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%s,%d,%.3f,%d,%.4f,%.4f,%.1f,%.1f,%.5f,%.5f,%.1f,%.1f,%.1f,%.1f\n",
			p.Protocol, p.Nodes, p.DensityPerKM, p.Trials,
			p.PDR.Mean, p.PDR.CI95,
			p.GoodputBPS.Mean, p.GoodputBPS.CI95,
			p.DelaySec.Mean, p.DelaySec.CI95,
			p.ControlPackets.Mean, p.ControlPackets.CI95,
			p.MACRetries.Mean, p.MACRetries.CI95); err != nil {
			return err
		}
	}
	return nil
}
