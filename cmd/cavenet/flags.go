package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// usageError marks a command-line usage mistake. main maps it to exit
// code 2 (the flag package's convention) versus 1 for runtime failures.
type usageError struct {
	err     error
	printed bool // the flag package already reported it on stderr
}

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

// badUsage builds a not-yet-printed usage error; main prints it once.
func badUsage(format string, args ...any) error {
	return &usageError{err: fmt.Errorf(format, args...)}
}

// newFlagSet builds a ContinueOnError flag set: parse failures return to
// the caller and exit through main's single path instead of os.Exit-ing
// from library code — the property that lets tests and the serve daemon
// call command functions without the process dying under them.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// parseFlags classifies parse failures: -h is a clean exit, anything
// else is a usage error the flag package already printed.
func parseFlags(fs *flag.FlagSet, args []string) error {
	switch err := fs.Parse(args); {
	case err == nil:
		return nil
	case errors.Is(err, flag.ErrHelp):
		return flag.ErrHelp
	default:
		return &usageError{err: err, printed: true}
	}
}

// parseFormat validates an output format up front, before any simulation
// runs: an unknown format must fail in milliseconds, not after a
// minutes-long sweep already burned its CPU budget.
func parseFormat(val string, allowed ...string) (string, error) {
	v := strings.ToLower(val)
	for _, a := range allowed {
		if v == a {
			return v, nil
		}
	}
	return "", badUsage("unknown format %q (want %s)", val, strings.Join(allowed, " or "))
}

// openOutput opens an -o target; "" and "-" mean stdout (wrapped in a
// no-op closer so callers can close unconditionally).
func openOutput(path string) (io.WriteCloser, error) {
	if path == "" || path == "-" {
		return nopCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }
