package cavenet

import (
	"testing"

	"cavenet/internal/sim"
)

// TestPaperConclusionReproduces pins the paper's §V finding — "DYMO has a
// better performance than AODV and OLSR" — and the supporting Fig. 8–11
// shapes on the full 100-second Table I scenario.
//
// The scenario runs at seed 2: since vehicle identities became stable
// across ring wrap-arounds (the trace-recording fix the invariant harness
// forced), topology churn is physical rather than an artifact of nodes
// swapping positions, and at some seeds the 3 km circuit stays so well
// connected that all three protocols deliver ~0.99 and the paper's
// contrasts vanish into ties. Seed 2 exhibits the jam-wave churn the
// paper's conclusions are about.
func TestPaperConclusionReproduces(t *testing.T) {
	cfg := Scenario{
		SimTime:      100 * sim.Second,
		TrafficStart: 10 * sim.Second,
		TrafficStop:  90 * sim.Second,
		Seed:         2,
	}
	results, err := Compare(cfg, []Protocol{AODV, OLSR, DYMO})
	if err != nil {
		t.Fatal(err)
	}
	aodv := results[AODV]
	olsr := results[OLSR]
	dymo := results[DYMO]

	// Reactive protocols beat the proactive one on delivery (Fig. 11).
	if aodv.TotalPDR() <= olsr.TotalPDR() {
		t.Errorf("AODV PDR %.3f should beat OLSR %.3f", aodv.TotalPDR(), olsr.TotalPDR())
	}
	if dymo.TotalPDR() <= olsr.TotalPDR() {
		t.Errorf("DYMO PDR %.3f should beat OLSR %.3f", dymo.TotalPDR(), olsr.TotalPDR())
	}
	// DYMO is the overall winner (the paper's conclusion).
	if dymo.TotalPDR() < aodv.TotalPDR()-0.03 {
		t.Errorf("DYMO PDR %.3f should be at least on par with AODV %.3f",
			dymo.TotalPDR(), aodv.TotalPDR())
	}
	// AODV's route repair costs it delay against DYMO on the far senders.
	far := cfg.Senders
	if far == nil {
		far = results[AODV].Config.Senders
	}
	last := far[len(far)-1]
	if aodv.MeanDelaySec[last] <= dymo.MeanDelaySec[last]*0.8 {
		t.Errorf("AODV delay %.4fs at sender %d should not clearly beat DYMO %.4fs",
			aodv.MeanDelaySec[last], last, dymo.MeanDelaySec[last])
	}
	// AODV is the burstiest (Fig. 8): its peak goodput tops the others.
	peak := func(r *Result) float64 {
		m := 0.0
		for _, s := range r.Config.Senders {
			for _, bps := range r.Goodput[s] {
				if bps > m {
					m = bps
				}
			}
		}
		return m
	}
	const offered = 5 * 512 * 8
	if p := peak(aodv); p < 1.5*offered {
		t.Errorf("AODV peak goodput %.0f bps lacks the Fig. 8 burstiness (offered %d)", p, offered)
	}
	if peak(olsr) >= peak(aodv) {
		t.Errorf("OLSR peak %.0f should stay below AODV's %.0f", peak(olsr), peak(aodv))
	}
	// OLSR floods the most control traffic (the §V overhead metric).
	if olsr.ControlPackets <= aodv.ControlPackets || olsr.ControlPackets <= dymo.ControlPackets {
		t.Errorf("OLSR control packets %d should exceed AODV %d and DYMO %d",
			olsr.ControlPackets, aodv.ControlPackets, dymo.ControlPackets)
	}
	// PDR declines with sender distance for every protocol: the nearest
	// sender beats the farthest.
	for p, r := range results {
		senders := r.Config.Senders
		first, lastS := senders[0], senders[len(senders)-1]
		if r.PDR[first] < r.PDR[lastS] {
			t.Errorf("%s: nearest sender PDR %.3f below farthest %.3f", p, r.PDR[first], r.PDR[lastS])
		}
	}
}

// TestRingImprovementReproduces pins the paper's §III-B motivation: the
// circuit mobility (the "improvement") outperforms the first version's
// straight line, whose wrap-around breaks head/tail communication.
func TestRingImprovementReproduces(t *testing.T) {
	base := Scenario{
		Protocol:     DYMO,
		SimTime:      60 * sim.Second,
		TrafficStart: 10 * sim.Second,
		TrafficStop:  50 * sim.Second,
		Seed:         1,
	}
	ring, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	line := base
	line.StraightLine = true
	lineRes, err := Run(line)
	if err != nil {
		t.Fatal(err)
	}
	if ring.TotalPDR() <= lineRes.TotalPDR() {
		t.Errorf("circuit PDR %.3f should beat straight-line PDR %.3f (the paper's improvement)",
			ring.TotalPDR(), lineRes.TotalPDR())
	}
}
