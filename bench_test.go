package cavenet

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md §6 calls out. Each
// bench runs the experiment at the paper's full parameters and reports the
// headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. EXPERIMENTS.md records paper-vs-measured.

import (
	"testing"

	"cavenet/internal/sim"
)

// --- Fig. 4: fundamental diagram -----------------------------------------

func BenchmarkFig4FundamentalDiagram(b *testing.B) {
	var peak0, peak5 float64
	for i := 0; i < b.N; i++ {
		for _, p := range []float64{0, 0.5} {
			pts, err := FundamentalDiagram(FundamentalConfig{
				LaneLength: 400, SlowdownP: p, Trials: 20, Iterations: 500, Warmup: 100, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			peak := 0.0
			for _, pt := range pts {
				if pt.Flow > peak {
					peak = pt.Flow
				}
			}
			if p == 0 {
				peak0 = peak
			} else {
				peak5 = peak
			}
		}
	}
	b.ReportMetric(peak0, "peakJ(p=0)")
	b.ReportMetric(peak5, "peakJ(p=0.5)")
}

// --- Fig. 5: space-time plots ---------------------------------------------

func BenchmarkFig5SpaceTime(b *testing.B) {
	panels := []SpaceTimeConfig{
		{LaneLength: 800, Density: 0.0625, SlowdownP: 0.3, Steps: 100, Seed: 1},
		{LaneLength: 400, Density: 0.5, SlowdownP: 0.3, Steps: 100, Seed: 2},
		{LaneLength: 400, Density: 0.1, SlowdownP: 0, Steps: 100, Seed: 3},
		{LaneLength: 400, Density: 0.5, SlowdownP: 0, Steps: 100, Seed: 4},
	}
	rowsTotal := 0
	for i := 0; i < b.N; i++ {
		rowsTotal = 0
		for _, cfg := range panels {
			rows, err := SpaceTime(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rowsTotal += len(rows)
		}
	}
	b.ReportMetric(float64(rowsTotal), "rows")
}

// --- Fig. 6: velocity realizations ----------------------------------------

func BenchmarkFig6VelocityRealizations(b *testing.B) {
	var freeFlow, congested float64
	for i := 0; i < b.N; i++ {
		low, err := VelocitySeries(VelocityConfig{Density: 0.1, SlowdownP: 0.3, Steps: 5000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		high, err := VelocitySeries(VelocityConfig{Density: 0.5, SlowdownP: 0.3, Steps: 5000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		freeFlow = mean(low[2500:])
		congested = mean(high[2500:])
	}
	b.ReportMetric(freeFlow, "v(rho=0.1)")
	b.ReportMetric(congested, "v(rho=0.5)")
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// --- Fig. 7: periodograms ---------------------------------------------------

func BenchmarkFig7Periodogram(b *testing.B) {
	var detSlope, stoSlope, stoHurst float64
	for i := 0; i < b.N; i++ {
		det, err := Periodogram(VelocityConfig{Density: 0.1, SlowdownP: 0, Steps: 8192, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		// The paper labels panel (b) ρ=0.05, p=0.5; the 1/f divergence is
		// strongest near the critical density, so we report both.
		sto, err := Periodogram(VelocityConfig{Density: 0.1, SlowdownP: 0.5, Steps: 8192, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		detSlope = det.GPHSlope
		stoSlope = sto.GPHSlope
		stoHurst = sto.Hurst
	}
	b.ReportMetric(detSlope, "slope(p=0)")
	b.ReportMetric(stoSlope, "slope(p=0.5)")
	b.ReportMetric(stoHurst, "hurst(p=0.5)")
}

// --- Table I / Figs. 8-11: protocol evaluation ------------------------------

func tableIScenario(p Protocol) Scenario {
	return Scenario{Protocol: p, Seed: 1}
}

func goodputBench(b *testing.B, p Protocol) {
	b.Helper()
	var peak, total float64
	for i := 0; i < b.N; i++ {
		res, err := Run(tableIScenario(p))
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, s := range res.Config.Senders {
			for _, bps := range res.Goodput[s] {
				if bps > peak {
					peak = bps
				}
			}
		}
		total = res.TotalPDR()
	}
	b.ReportMetric(peak, "peak-bps")
	b.ReportMetric(total, "total-pdr")
}

func BenchmarkFig8AODVGoodput(b *testing.B)  { goodputBench(b, AODV) }
func BenchmarkFig9OLSRGoodput(b *testing.B)  { goodputBench(b, OLSR) }
func BenchmarkFig10DYMOGoodput(b *testing.B) { goodputBench(b, DYMO) }

func BenchmarkFig11PDR(b *testing.B) {
	var pdr map[Protocol]float64
	for i := 0; i < b.N; i++ {
		results, err := Compare(tableIScenario(AODV), []Protocol{AODV, OLSR, DYMO})
		if err != nil {
			b.Fatal(err)
		}
		pdr = map[Protocol]float64{}
		for p, r := range results {
			pdr[p] = r.TotalPDR()
		}
	}
	b.ReportMetric(pdr[AODV], "pdr-aodv")
	b.ReportMetric(pdr[OLSR], "pdr-olsr")
	b.ReportMetric(pdr[DYMO], "pdr-dymo")
}

func BenchmarkTable1Scenario(b *testing.B) {
	// The scenario assembly + full run, with event throughput reported.
	for i := 0; i < b.N; i++ {
		res, err := Run(tableIScenario(AODV))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MACStats.DataTx), "mac-frames")
		b.ReportMetric(float64(res.ControlPackets), "ctrl-packets")
	}
}

// --- §IV-B: transient time ---------------------------------------------------

func BenchmarkTransientTime(b *testing.B) {
	var tau float64
	for i := 0; i < b.N; i++ {
		res, err := Transient(VelocityConfig{Density: 0.1, SlowdownP: 0, Steps: 2000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		tau = float64(res.Tau)
	}
	b.ReportMetric(tau, "tau-steps")
}

// --- Ablations (DESIGN.md §6) -------------------------------------------------

// BenchmarkAblationRingVsLine quantifies the paper's §III-B improvement:
// the circuit boundary vs. the first version's straight line with its
// wrap-around communication gap.
func BenchmarkAblationRingVsLine(b *testing.B) {
	var ring, line float64
	for i := 0; i < b.N; i++ {
		cfg := tableIScenario(DYMO)
		r1, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.StraightLine = true
		r2, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ring = r1.TotalPDR()
		line = r2.TotalPDR()
	}
	b.ReportMetric(ring, "pdr-circuit")
	b.ReportMetric(line, "pdr-line")
}

func BenchmarkAblationCaptureOff(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		cfg := tableIScenario(DYMO)
		r1, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.NoCapture = true
		r2, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		on = r1.TotalPDR()
		off = r2.TotalPDR()
	}
	b.ReportMetric(on, "pdr-capture")
	b.ReportMetric(off, "pdr-nocapture")
}

func BenchmarkAblationExpandingRing(b *testing.B) {
	var ring, flood float64
	for i := 0; i < b.N; i++ {
		cfg := tableIScenario(AODV)
		r1, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.AODVNoExpandingRing = true
		r2, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ring = float64(r1.ControlPackets)
		flood = float64(r2.ControlPackets)
	}
	b.ReportMetric(ring, "ctrl-ring")
	b.ReportMetric(flood, "ctrl-flood")
}

func BenchmarkAblationDYMOPathAccumulation(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		cfg := tableIScenario(DYMO)
		r1, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.DYMONoPathAccumulation = true
		r2, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		on = r1.TotalPDR()
		off = r2.TotalPDR()
	}
	b.ReportMetric(on, "pdr-pathaccum")
	b.ReportMetric(off, "pdr-nopathaccum")
}

func BenchmarkAblationOLSRETX(b *testing.B) {
	var hop, etx float64
	for i := 0; i < b.N; i++ {
		cfg := tableIScenario(OLSR)
		r1, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.OLSRETX = true
		r2, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		hop = r1.TotalPDR()
		etx = r2.TotalPDR()
	}
	b.ReportMetric(hop, "pdr-hopcount")
	b.ReportMetric(etx, "pdr-etx")
}

// --- Micro-benchmarks of the substrates ---------------------------------------

func BenchmarkCircuitTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CircuitTrace(tableIScenario(AODV)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNS2Export(b *testing.B) {
	tr, err := CircuitTrace(tableIScenario(AODV))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ExportNS2(discard{}, tr); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func BenchmarkShortScenarioThroughput(b *testing.B) {
	// A 10 s scenario as a per-iteration unit, for -benchmem allocation
	// tracking of the whole CPS stack.
	cfg := Scenario{
		Protocol:     DYMO,
		SimTime:      10 * sim.Second,
		TrafficStart: 2 * sim.Second,
		TrafficStop:  9 * sim.Second,
		Seed:         1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions (paper §V future work + Fig. 1 discussion) --------------------

// BenchmarkFig1bInterference quantifies the opposite-lane interference of
// Fig. 1-b: the same two-lane mobility with the second lane silent vs.
// transmitting.
func BenchmarkFig1bInterference(b *testing.B) {
	var res InterferenceResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Interference(InterferenceConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.QuietPDR, "pdr-quiet")
	b.ReportMetric(res.InterferedPDR, "pdr-interfered")
	b.ReportMetric(float64(res.QuietRetries), "retries-quiet")
	b.ReportMetric(float64(res.InterferedRetries), "retries-interfered")
}

// BenchmarkAblationRTSCTS measures the RTS/CTS trade-off that Table I's
// "RTS/CTS: None" declines: handshake overhead vs. hidden-terminal
// protection in the full scenario.
func BenchmarkAblationRTSCTS(b *testing.B) {
	var off, on float64
	var retriesOff, retriesOn uint64
	for i := 0; i < b.N; i++ {
		cfg := tableIScenario(DYMO)
		r1, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.RTSThreshold = 256
		r2, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		off, on = r1.TotalPDR(), r2.TotalPDR()
		retriesOff, retriesOn = r1.MACStats.Retries, r2.MACStats.Retries
	}
	b.ReportMetric(off, "pdr-nortscts")
	b.ReportMetric(on, "pdr-rtscts")
	b.ReportMetric(float64(retriesOff), "retries-nortscts")
	b.ReportMetric(float64(retriesOn), "retries-rtscts")
}

// BenchmarkExtTopologyChange reports the §V "topology change" metric on
// the Table I mobility: link-change rate and mean link lifetime.
func BenchmarkExtTopologyChange(b *testing.B) {
	var st TopologyStats
	for i := 0; i < b.N; i++ {
		tr, err := CircuitTrace(tableIScenario(AODV))
		if err != nil {
			b.Fatal(err)
		}
		st = AnalyzeTopology(tr, 250)
	}
	b.ReportMetric(st.ChangeRate, "linkchanges-per-s")
	b.ReportMetric(st.MeanLinkUpSeconds, "mean-link-life-s")
	b.ReportMetric(st.MeanDegree, "mean-degree")
}

// BenchmarkExtRWStationary contrasts the classical RW velocity decay with
// the perfect-simulation initialization of the paper's ref [2].
func BenchmarkExtRWStationary(b *testing.B) {
	var decayTail, stationaryTail float64
	for i := 0; i < b.N; i++ {
		cfg := RWDecayConfig{Nodes: 200, VMin: 0.1, VMax: 20, Duration: 2000, Seed: 1}
		_, dec := RandomWaypointDecay(cfg)
		_, sta := RandomWaypointStationary(cfg)
		tenth := len(dec) / 10
		decayTail = mean(dec[len(dec)-tenth:]) / mean(dec[:tenth])
		stationaryTail = mean(sta[len(sta)-tenth:]) / mean(sta[:tenth])
	}
	b.ReportMetric(decayTail, "tail-head-ratio-classic")
	b.ReportMetric(stationaryTail, "tail-head-ratio-stationary")
}

// BenchmarkExtShadowingConnectivity sweeps link probability vs distance
// under log-normal shadowing (future-work ref [18]) and reports the sigmoid
// landmarks against the two-ray disk.
func BenchmarkExtShadowingConnectivity(b *testing.B) {
	var at250 float64
	for i := 0; i < b.N; i++ {
		pts := ShadowingConnectivity(ShadowingConfig{Seed: 1})
		for _, p := range pts {
			if p.DistanceM == 250 {
				at250 = p.LinkProb
			}
		}
	}
	b.ReportMetric(at250, "P(link)@250m")
}
