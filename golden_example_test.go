package cavenet_test

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
)

// TestGoldenQuickstartOutput locks the quickstart example's full output:
// it is the repo's front door and its numbers are deterministic (seeded
// scenario, registry-built mobility), so any drift — in the catalogue, the
// runner, the RNG derivations, or the metrics — shows up here first.
// Regenerate with
//
//	go test . -run GoldenQuickstart -update-quickstart
var updateQuickstart = flag.Bool("update-quickstart", false, "rewrite the quickstart golden file")

// tmpPathRe normalizes the one nondeterministic line: the temp file the
// example writes its ns-2 export to.
var tmpPathRe = regexp.MustCompile(`written to \S+`)

func TestGoldenQuickstartOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the example binary")
	}
	bin := filepath.Join(t.TempDir(), "quickstart")
	build := exec.Command("go", "build", "-o", bin, "./examples/quickstart")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart: %v\n%s", err, out)
	}
	got := tmpPathRe.ReplaceAll(out, []byte("written to <tmpfile>"))

	path := filepath.Join("testdata", "quickstart.golden")
	if *updateQuickstart {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-quickstart): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("quickstart output diverged.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
